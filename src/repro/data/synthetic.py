"""Procedural image-classification datasets.

The paper evaluates on CIFAR-10/100, SVHN, and ImageNet-20/50/100; none
of those are available offline, so this module builds the
behaviour-preserving substitute documented in DESIGN.md: each class is a
smooth random prototype texture, and each sample is that prototype under
a random geometric shift, per-channel photometric variation, and pixel
noise.  The family gives the three properties contrastive learning
needs — class-structured images, augmentation-invariant class identity,
and controllable class count / resolution / difficulty.

Images are float32 NCHW in [0, 1].
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.data.resize import bilinear_resize
from repro.utils.rng import new_rng

__all__ = ["SyntheticConfig", "SyntheticImageDataset"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a procedural dataset.

    Attributes
    ----------
    name: registry name ("cifar10", "imagenet100", ...).
    num_classes: number of class prototypes.
    image_size: square image side in pixels.
    channels: image channels (3 = RGB).
    prototype_grid: side of the low-resolution random field that is
        upsampled into a prototype; smaller = smoother, more distinct
        classes; larger = higher-frequency, harder classes.
    shift_fraction: maximum circular shift applied per sample, as a
        fraction of ``image_size`` (intra-class geometric variation).
    color_jitter: per-sample, per-channel gain/offset range
        (intra-class photometric variation).
    noise_std: additive Gaussian pixel noise.
    content_seed: seeds the prototype textures, independent of the
        sampling rng, so two datasets with different names differ.
    """

    name: str
    num_classes: int
    image_size: int
    channels: int = 3
    prototype_grid: int = 5
    shift_fraction: float = 0.3
    color_jitter: float = 0.25
    noise_std: float = 0.06
    content_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {self.num_classes}")
        if self.image_size < 4:
            raise ValueError(f"image_size must be >= 4, got {self.image_size}")
        if self.prototype_grid < 2:
            raise ValueError(f"prototype_grid must be >= 2, got {self.prototype_grid}")
        if not 0.0 <= self.shift_fraction <= 0.5:
            raise ValueError(
                f"shift_fraction must be in [0, 0.5], got {self.shift_fraction}"
            )
        if self.noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {self.noise_std}")

    def with_image_size(self, image_size: int) -> "SyntheticConfig":
        """A copy of this config at a different resolution."""
        return replace(self, image_size=image_size)


class SyntheticImageDataset:
    """Generative dataset: sample unlimited images per class on demand.

    The class prototypes are built once from ``config.content_seed``;
    all per-sample randomness comes from the generator passed to the
    sampling methods, so streams and evaluation splits are reproducible
    independently of each other.
    """

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config
        self.prototypes = self._build_prototypes()

    # ------------------------------------------------------------------
    def _build_prototypes(self) -> np.ndarray:
        """(K, C, H, W) smooth textures, one per class, channel-mean 0.5.

        Zero-centering each channel removes the trivial "classify by
        mean color" shortcut so the encoder must use spatial structure.
        """
        cfg = self.config
        # Stable across processes (unlike hash()): content depends only on
        # (name, content_seed).
        digest = hashlib.sha256(
            f"{cfg.name}:{cfg.content_seed}".encode("utf-8")
        ).digest()
        rng = new_rng(int.from_bytes(digest[:4], "little"))
        low = rng.uniform(
            0.0,
            1.0,
            size=(cfg.num_classes, cfg.channels, cfg.prototype_grid, cfg.prototype_grid),
        )
        protos = bilinear_resize(low, cfg.image_size, cfg.image_size)
        # Per-channel zero-centering around 0.5 with a fixed contrast scale.
        mean = protos.mean(axis=(2, 3), keepdims=True)
        std = protos.std(axis=(2, 3), keepdims=True) + 1e-8
        protos = 0.5 + 0.22 * (protos - mean) / std
        return np.clip(protos, 0.0, 1.0).astype(np.float32)

    # ------------------------------------------------------------------
    def sample(self, class_ids: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one image per entry of ``class_ids``.

        Returns a float32 ``(N, C, H, W)`` batch in [0, 1].
        """
        cfg = self.config
        class_ids = np.asarray(class_ids)
        if class_ids.ndim != 1:
            raise ValueError(f"class_ids must be 1-D, got shape {class_ids.shape}")
        if class_ids.size and (
            class_ids.min() < 0 or class_ids.max() >= cfg.num_classes
        ):
            raise ValueError(
                f"class ids out of range [0, {cfg.num_classes}): "
                f"[{class_ids.min()}, {class_ids.max()}]"
            )
        n = class_ids.shape[0]
        h = w = cfg.image_size
        base = self.prototypes[class_ids]  # (N, C, H, W)

        # Circular shift per sample (geometric intra-class variation).
        max_shift = int(round(cfg.shift_fraction * cfg.image_size))
        if max_shift > 0:
            dy = rng.integers(-max_shift, max_shift + 1, size=n)
            dx = rng.integers(-max_shift, max_shift + 1, size=n)
            rows = (np.arange(h)[None, :] + dy[:, None]) % h  # (N, H)
            cols = (np.arange(w)[None, :] + dx[:, None]) % w  # (N, W)
            batch = np.arange(n)[:, None, None, None]
            chan = np.arange(cfg.channels)[None, :, None, None]
            base = base[batch, chan, rows[:, None, :, None], cols[:, None, None, :]]

        # Photometric variation: per-channel gain and offset.
        if cfg.color_jitter > 0:
            gain = rng.uniform(
                1.0 - cfg.color_jitter, 1.0 + cfg.color_jitter, size=(n, cfg.channels, 1, 1)
            )
            offset = rng.uniform(
                -cfg.color_jitter / 2, cfg.color_jitter / 2, size=(n, cfg.channels, 1, 1)
            )
            base = base * gain + offset

        if cfg.noise_std > 0:
            base = base + rng.normal(0.0, cfg.noise_std, size=base.shape)

        return np.clip(base, 0.0, 1.0).astype(np.float32)

    # ------------------------------------------------------------------
    def make_split(
        self,
        samples_per_class: int,
        rng: np.random.Generator,
        shuffle: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A class-balanced iid split: ``(images, labels)``.

        Used for the stage-2 classifier pools and held-out test sets.
        """
        if samples_per_class < 1:
            raise ValueError(
                f"samples_per_class must be >= 1, got {samples_per_class}"
            )
        labels = np.repeat(np.arange(self.config.num_classes), samples_per_class)
        if shuffle:
            labels = rng.permutation(labels)
        images = self.sample(labels, rng)
        return images, labels.astype(np.int64)

    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return (self.config.channels, self.config.image_size, self.config.image_size)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"SyntheticImageDataset(name={cfg.name!r}, classes={cfg.num_classes}, "
            f"size={cfg.image_size})"
        )
