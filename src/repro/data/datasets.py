"""Registry of named dataset configurations mirroring the paper's six
evaluation datasets.

Each entry maps a paper dataset to a synthetic stand-in whose class
count and relative difficulty match the role the dataset plays in the
evaluation (see DESIGN.md, substitution table).  Resolutions are scaled
for CPU training; benchmarks may override ``image_size`` uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset

__all__ = ["DATASET_REGISTRY", "dataset_names", "get_dataset_config", "make_dataset"]


# The paper's datasets -> synthetic stand-ins.
#  - class counts match the originals (10/100/10/20/50/100);
#  - "ImageNet" subsets use a higher resolution and busier textures
#    (larger prototype grid), mirroring "high-resolution, challenging";
#  - SVHN is the easiest (digits): fewer effective degrees of freedom,
#    modelled by a smoother prototype and less jitter.
DATASET_REGISTRY: Dict[str, SyntheticConfig] = {
    "cifar10": SyntheticConfig(
        name="cifar10",
        num_classes=10,
        image_size=12,
        prototype_grid=5,
        shift_fraction=0.15,
        color_jitter=0.20,
        noise_std=0.05,
        content_seed=101,
    ),
    "cifar100": SyntheticConfig(
        name="cifar100",
        num_classes=100,
        image_size=12,
        prototype_grid=6,
        shift_fraction=0.15,
        color_jitter=0.20,
        noise_std=0.05,
        content_seed=102,
    ),
    "svhn": SyntheticConfig(
        name="svhn",
        num_classes=10,
        image_size=12,
        prototype_grid=4,
        shift_fraction=0.10,
        color_jitter=0.12,
        noise_std=0.04,
        content_seed=103,
    ),
    "imagenet20": SyntheticConfig(
        name="imagenet20",
        num_classes=20,
        image_size=14,
        prototype_grid=6,
        shift_fraction=0.12,
        color_jitter=0.18,
        noise_std=0.05,
        content_seed=104,
    ),
    "imagenet50": SyntheticConfig(
        name="imagenet50",
        num_classes=50,
        image_size=14,
        prototype_grid=6,
        shift_fraction=0.12,
        color_jitter=0.18,
        noise_std=0.05,
        content_seed=105,
    ),
    "imagenet100": SyntheticConfig(
        name="imagenet100",
        num_classes=100,
        image_size=14,
        prototype_grid=6,
        shift_fraction=0.12,
        color_jitter=0.18,
        noise_std=0.05,
        content_seed=106,
    ),
}


def dataset_names() -> List[str]:
    """All registered dataset names."""
    return sorted(DATASET_REGISTRY)


def get_dataset_config(name: str, image_size: Optional[int] = None) -> SyntheticConfig:
    """Look up a registered config, optionally overriding the resolution."""
    if name not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    cfg = DATASET_REGISTRY[name]
    if image_size is not None:
        cfg = cfg.with_image_size(image_size)
    return cfg


def make_dataset(name: str, image_size: Optional[int] = None) -> SyntheticImageDataset:
    """Instantiate a registered dataset."""
    return SyntheticImageDataset(get_dataset_config(name, image_size))
