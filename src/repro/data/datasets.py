"""Registry of named dataset configurations mirroring the paper's six
evaluation datasets.

Each entry maps a paper dataset to a synthetic stand-in whose class
count and relative difficulty match the role the dataset plays in the
evaluation (see DESIGN.md, substitution table).  Resolutions are scaled
for CPU training; benchmarks may override ``image_size`` uniformly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.registry import DATASETS, register_dataset

__all__ = ["DATASET_REGISTRY", "dataset_names", "get_dataset_config", "make_dataset"]


# The paper's datasets -> synthetic stand-ins.
#  - class counts match the originals (10/100/10/20/50/100);
#  - "ImageNet" subsets use a higher resolution and busier textures
#    (larger prototype grid), mirroring "high-resolution, challenging";
#  - SVHN is the easiest (digits): fewer effective degrees of freedom,
#    modelled by a smoother prototype and less jitter.
DATASET_REGISTRY: Dict[str, SyntheticConfig] = {
    "cifar10": SyntheticConfig(
        name="cifar10",
        num_classes=10,
        image_size=12,
        prototype_grid=5,
        shift_fraction=0.15,
        color_jitter=0.20,
        noise_std=0.05,
        content_seed=101,
    ),
    "cifar100": SyntheticConfig(
        name="cifar100",
        num_classes=100,
        image_size=12,
        prototype_grid=6,
        shift_fraction=0.15,
        color_jitter=0.20,
        noise_std=0.05,
        content_seed=102,
    ),
    "svhn": SyntheticConfig(
        name="svhn",
        num_classes=10,
        image_size=12,
        prototype_grid=4,
        shift_fraction=0.10,
        color_jitter=0.12,
        noise_std=0.04,
        content_seed=103,
    ),
    "imagenet20": SyntheticConfig(
        name="imagenet20",
        num_classes=20,
        image_size=14,
        prototype_grid=6,
        shift_fraction=0.12,
        color_jitter=0.18,
        noise_std=0.05,
        content_seed=104,
    ),
    "imagenet50": SyntheticConfig(
        name="imagenet50",
        num_classes=50,
        image_size=14,
        prototype_grid=6,
        shift_fraction=0.12,
        color_jitter=0.18,
        noise_std=0.05,
        content_seed=105,
    ),
    "imagenet100": SyntheticConfig(
        name="imagenet100",
        num_classes=100,
        image_size=14,
        prototype_grid=6,
        shift_fraction=0.12,
        color_jitter=0.18,
        noise_std=0.05,
        content_seed=106,
    ),
}


def _synthetic_factory(cfg: SyntheticConfig):
    """A registry factory instantiating one synthetic stand-in recipe."""

    def build(image_size: Optional[int] = None) -> SyntheticImageDataset:
        resolved = cfg if image_size is None else cfg.with_image_size(image_size)
        return SyntheticImageDataset(resolved)

    return build


for _name, _cfg in DATASET_REGISTRY.items():
    register_dataset(_name, num_classes=_cfg.num_classes)(_synthetic_factory(_cfg))
del _name, _cfg


def dataset_names() -> List[str]:
    """All registered dataset names (built-ins plus plugins)."""
    return DATASETS.names()


def get_dataset_config(name: str, image_size: Optional[int] = None) -> SyntheticConfig:
    """Look up a built-in synthetic config, optionally overriding the
    resolution.  Plugin datasets registered via
    :func:`repro.registry.register_dataset` have no SyntheticConfig;
    use :func:`make_dataset` for those."""
    if name not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(DATASET_REGISTRY))}"
        )
    cfg = DATASET_REGISTRY[name]
    if image_size is not None:
        cfg = cfg.with_image_size(image_size)
    return cfg


def make_dataset(name: str, image_size: Optional[int] = None) -> Any:
    """Instantiate a registered dataset (built-in or plugin) by name.

    Built-ins return :class:`SyntheticImageDataset`; plugins return
    whatever their registered factory builds.

    An *explicit* ``image_size`` is a requirement, not an offer: a
    plugin factory that does not declare the parameter raises
    ``TypeError`` rather than silently building at native resolution.
    """
    if image_size is None:
        # omit the key entirely so factories keep their own defaults
        return DATASETS.create(name)
    return DATASETS.create_with_required(name, ("image_size",), image_size=image_size)
