"""Registry-driven stream scenarios — the device-stream zoo.

The paper's argument lives or dies on *realistic device streams*:
temporally correlated, drifting, unlabeled input (§IV-A).  This module
makes the stream shape a first-class, pluggable component, exactly the
way policies and backends already are:

* :class:`StreamSource` — the protocol every stream implements
  (``next_segment`` / ``segments`` / ``position`` / ``state_dict`` /
  ``load_state_dict``).  :class:`~repro.data.stream.TemporalStream` and
  :class:`~repro.data.drift.DriftStream` satisfy it unchanged.
* ``SCENARIOS`` registry (:mod:`repro.registry`) — scenarios register
  with ``@register_scenario`` and are then accepted by name everywhere:
  ``config.scenario``, ``Session.with_scenario``, the CLI's
  ``--scenario`` flag, and the ``scenario-sweep`` experiment.
* :func:`create_scenario` — the canonical constructor; the framework
  offers ``dataset, stc, rng, total_samples`` and the factory declares
  what it needs (same offer-vs-option rule as ``create_policy``).

Built-in scenarios (docs/SCENARIOS.md has the full guide):

==============  ======================================================
``temporal``    fixed STC runs — the paper's base process
``drift``       class-incremental phases (classes unlock over time)
``cyclic-drift``  disjoint environments that *recur*, testing
                whether a policy's buffer forgets a revisited world
``bursty``      variable run lengths: calm STC runs punctuated by
                long same-class bursts (run-length schedule)
``imbalanced``  long-tailed class frequencies (head classes dominate)
``corrupted``   wrapper: per-phase noise/blur shift composed on top
                of any base scenario
==============  ======================================================
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.data.drift import DriftStream, growing_phases
from repro.data.stream import StreamSegment, TemporalStream, _segment_iterator
from repro.data.synthetic import SyntheticImageDataset
from repro.registry import SCENARIOS, register_scenario

__all__ = [
    "StreamSource",
    "create_scenario",
    "disjoint_phases",
    "CyclicDriftStream",
    "BurstyStream",
    "ImbalancedStream",
    "CorruptedStream",
]


@runtime_checkable
class StreamSource(Protocol):
    """The contract every stream scenario implements.

    A stream source is a *stateful process*: each ``next_segment`` call
    advances it, ``position`` counts samples emitted so far, and the
    ``state_dict``/``load_state_dict`` pair checkpoints the process
    counters (the driving RNG is owned and checkpointed by the caller's
    :class:`~repro.utils.rng.RngRegistry`).  Labels carried by the
    produced :class:`~repro.data.stream.StreamSegment` are for
    *evaluation only* — the framework never shows them to selection
    policies.
    """

    def next_segment(self, segment_size: int) -> StreamSegment: ...

    def segments(
        self, segment_size: int, total_samples: int
    ) -> Iterator[StreamSegment]: ...

    @property
    def position(self) -> int: ...

    def state_dict(self) -> dict: ...

    def load_state_dict(self, state: dict) -> None: ...


def create_scenario(
    name: str,
    *,
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    **extra,
) -> StreamSource:
    """Construct a stream scenario by registered name.

    The standard keyword set (``dataset``, ``stc``, ``rng``,
    ``total_samples``) is *offered* to the registered factory, which
    receives only the keywords its signature declares.  Keys the caller
    adds via ``extra`` are explicit options: a factory that does not
    accept one raises ``TypeError`` (mirroring
    :func:`repro.registry.create_policy`).
    """
    source = SCENARIOS.create_with_required(
        name,
        tuple(extra),
        dataset=dataset,
        stc=stc,
        rng=rng,
        total_samples=total_samples,
        **extra,
    )
    if not isinstance(source, StreamSource):
        raise TypeError(
            f"scenario {name!r} built a {type(source).__name__}, expected a "
            "StreamSource (next_segment/segments/position/state_dict)"
        )
    return source


def disjoint_phases(num_classes: int, num_phases: int) -> List[List[int]]:
    """Split the class population into ``num_phases`` disjoint slices.

    The complement of :func:`~repro.data.drift.growing_phases`: each
    phase is a *different world* with no class overlap — the shape that
    makes recurring environments (``cyclic-drift``) measure forgetting.
    """
    if num_phases < 1:
        raise ValueError(f"num_phases must be >= 1, got {num_phases}")
    if num_classes < num_phases:
        raise ValueError(
            f"need at least one class per phase: {num_classes} classes, "
            f"{num_phases} phases"
        )
    bounds = np.linspace(0, num_classes, num_phases + 1).astype(int)
    return [list(range(bounds[i], bounds[i + 1])) for i in range(num_phases)]


class CyclicDriftStream(DriftStream):
    """Drift whose phases *recur* instead of persisting.

    ``DriftStream`` clamps to the final phase forever; here the phase
    index cycles (``(position // phase_length) % num_phases``), so a
    previously seen environment returns and the run measures whether
    the buffer still serves it — the forgetting axis of the paper's
    "adapt to new environments" story.
    """

    def phase_index(self, position: Optional[int] = None) -> int:
        """Phase active at ``position``, cycling through all phases."""
        position = self._position if position is None else position
        return (position // self.phase_length) % len(self.phases)


class BurstyStream(TemporalStream):
    """Variable STC schedule: calm runs punctuated by long bursts.

    Each new run draws its length — ``burst_stc`` with probability
    ``burst_prob``, else the base ``stc`` — modelling a camera that
    mostly pans across subjects but occasionally fixates (a parked car,
    a sleeping animal).  The empirical STC therefore *varies over
    time*, which no fixed-``stc`` grid point of the paper's Table 2
    exercises.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        stc: int,
        rng: np.random.Generator,
        burst_stc: Optional[int] = None,
        burst_prob: float = 0.25,
        forbid_repeat: bool = True,
    ) -> None:
        super().__init__(dataset, stc, rng, forbid_repeat=forbid_repeat)
        burst_stc = 4 * self.stc if burst_stc is None else int(burst_stc)
        if burst_stc < 1:
            raise ValueError(f"burst_stc must be >= 1, got {burst_stc}")
        if not 0.0 <= burst_prob <= 1.0:
            raise ValueError(f"burst_prob must be in [0, 1], got {burst_prob}")
        self.burst_stc = burst_stc
        self.burst_prob = float(burst_prob)

    def _next_run_length(self) -> int:
        if self.rng.random() < self.burst_prob:
            return self.burst_stc
        return self.stc


class ImbalancedStream(TemporalStream):
    """Long-tailed class frequencies over an otherwise-correlated stream.

    Class ``k`` is drawn with probability proportional to
    ``imbalance ** (k / (K - 1))`` — a geometric decay whose head/tail
    frequency ratio is exactly ``1 / imbalance``.  Selection policies
    that only chase high scores can starve the tail; the buffer
    diversity column of the robustness table shows it.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        stc: int,
        rng: np.random.Generator,
        imbalance: float = 0.1,
        forbid_repeat: bool = True,
    ) -> None:
        super().__init__(dataset, stc, rng, forbid_repeat=forbid_repeat)
        if not 0.0 < imbalance <= 1.0:
            raise ValueError(f"imbalance must be in (0, 1], got {imbalance}")
        self.imbalance = float(imbalance)
        k = dataset.num_classes
        weights = np.power(imbalance, np.arange(k) / max(k - 1, 1))
        self.class_probs = weights / weights.sum()

    def _next_class(self) -> int:
        probs = self.class_probs
        if self.forbid_repeat and self._current_class is not None:
            probs = probs.copy()
            probs[self._current_class] = 0.0
            probs = probs / probs.sum()
        return int(self.rng.choice(self.dataset.num_classes, p=probs))


def _box_blur(images: np.ndarray) -> np.ndarray:
    """3×3 circular box blur over the spatial axes of an NCHW batch."""
    out = np.zeros(images.shape, dtype=np.float64)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            out += np.roll(np.roll(images, dy, axis=2), dx, axis=3)
    return out / 9.0


class CorruptedStream:
    """Per-phase corruption shift composed on top of any base scenario.

    Sample ``i`` passes through corruption level
    ``(i // phase_length) % levels``: level 0 is clean, higher levels
    add Gaussian pixel noise of linearly increasing strength, and the
    top level additionally box-blurs (when ``blur``).  The *input
    distribution* therefore shifts while the *label process* is
    whatever the wrapped base scenario produces — labels pass through
    untouched, preserving the segment label-isolation contract.
    """

    def __init__(
        self,
        base: StreamSource,
        rng: np.random.Generator,
        phase_length: int,
        levels: int = 3,
        noise_std: float = 0.2,
        blur: bool = True,
    ) -> None:
        if phase_length < 1:
            raise ValueError(f"phase_length must be >= 1, got {phase_length}")
        if levels < 2:
            raise ValueError(f"need >= 2 corruption levels, got {levels}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        self.base = base
        self.rng = rng
        self.phase_length = int(phase_length)
        self.levels = int(levels)
        self.noise_std = float(noise_std)
        self.blur = bool(blur)

    # ------------------------------------------------------------------
    def corruption_level(self, position: int) -> int:
        """Corruption level applied to the sample at ``position``."""
        return (position // self.phase_length) % self.levels

    def _corrupt(self, images: np.ndarray, start: int) -> np.ndarray:
        levels = self.corruption_level(start + np.arange(images.shape[0]))
        images = images.astype(np.float64, copy=True)
        # np.unique is sorted, so the per-level RNG draw order is fixed.
        for level in np.unique(levels):
            if level == 0:
                continue
            mask = levels == level
            chunk = images[mask]
            if self.blur and level == self.levels - 1:
                chunk = _box_blur(chunk)
            std = self.noise_std * (level / (self.levels - 1))
            chunk = chunk + self.rng.normal(0.0, std, size=chunk.shape)
            images[mask] = chunk
        return np.clip(images, 0.0, 1.0).astype(np.float32)

    # -- StreamSource protocol ------------------------------------------
    def next_segment(self, segment_size: int) -> StreamSegment:
        segment = self.base.next_segment(segment_size)
        images = self._corrupt(segment.images, segment.start_index)
        return StreamSegment(images, segment.labels, segment.start_index)

    def segments(
        self, segment_size: int, total_samples: int
    ) -> Iterator[StreamSegment]:
        """Iterate corrupted segments (arguments validated eagerly)."""
        return _segment_iterator(self, segment_size, total_samples)

    @property
    def position(self) -> int:
        return self.base.position

    def state_dict(self) -> dict:
        """Wrapper state is derived from position; delegate to the base."""
        return {"base": self.base.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.base.load_state_dict(state["base"])


# ----------------------------------------------------------------------
# Built-in scenario factories.
# ----------------------------------------------------------------------
@register_scenario(
    "temporal",
    label="Temporally correlated (fixed STC runs)",
    aliases=("stationary", "stc-runs"),
)
def temporal_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    forbid_repeat: bool = True,
) -> TemporalStream:
    """The paper's base process: exact same-class runs of length STC."""
    return TemporalStream(dataset, stc, rng, forbid_repeat=forbid_repeat)


@register_scenario(
    "drift", label="Class-incremental drift", aliases=("class-incremental",)
)
def drift_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    num_phases: int = 2,
) -> DriftStream:
    """Growing phases that cumulatively unlock classes (ablation F)."""
    phases = growing_phases(dataset.num_classes, num_phases)
    phase_length = max(1, total_samples // num_phases)
    return DriftStream(dataset, stc, rng, phases=phases, phase_length=phase_length)


@register_scenario(
    "cyclic-drift", label="Recurring environments", aliases=("cyclic", "recurring")
)
def cyclic_drift_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    num_environments: int = 2,
    cycles: int = 2,
) -> CyclicDriftStream:
    """Disjoint environments visited round-robin, ``cycles`` times each."""
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    phases = disjoint_phases(dataset.num_classes, num_environments)
    phase_length = max(1, total_samples // (num_environments * cycles))
    return CyclicDriftStream(
        dataset, stc, rng, phases=phases, phase_length=phase_length
    )


@register_scenario("bursty", label="Variable STC run lengths", aliases=("burst",))
def bursty_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    burst_stc: Optional[int] = None,
    burst_prob: float = 0.25,
    forbid_repeat: bool = True,
) -> BurstyStream:
    """Calm ``stc`` runs punctuated by ``burst_stc`` bursts."""
    return BurstyStream(
        dataset,
        stc,
        rng,
        burst_stc=burst_stc,
        burst_prob=burst_prob,
        forbid_repeat=forbid_repeat,
    )


@register_scenario(
    "imbalanced", label="Long-tailed class frequencies", aliases=("long-tail",)
)
def imbalanced_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    imbalance: float = 0.1,
    forbid_repeat: bool = True,
) -> ImbalancedStream:
    """Geometric class-frequency decay with head/tail ratio 1/imbalance."""
    return ImbalancedStream(
        dataset, stc, rng, imbalance=imbalance, forbid_repeat=forbid_repeat
    )


@register_scenario(
    "corrupted", label="Per-phase corruption shift", aliases=("noisy",)
)
def corrupted_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    base: str = "temporal",
    corruption_levels: int = 3,
    corruption_phase_length: Optional[int] = None,
    noise_std: float = 0.2,
    blur: bool = True,
    **base_options,
) -> CorruptedStream:
    """Compose per-phase corruption on top of any *other* base scenario.

    ``base_options`` are forwarded to the base scenario's factory under
    the usual explicit-option rule.  The default phase length walks
    through all corruption levels twice over the stream.
    """
    base_name = SCENARIOS.get(base).name
    if base_name == "corrupted":
        raise ValueError("the corrupted scenario cannot wrap itself")
    source = create_scenario(
        base_name,
        dataset=dataset,
        stc=stc,
        rng=rng,
        total_samples=total_samples,
        **base_options,
    )
    if corruption_phase_length is None:
        corruption_phase_length = max(1, total_samples // (corruption_levels * 2))
    return CorruptedStream(
        source,
        rng=rng,
        phase_length=corruption_phase_length,
        levels=corruption_levels,
        noise_std=noise_std,
        blur=blur,
    )
