"""Registry-driven stream scenarios — the device-stream zoo and algebra.

The paper's argument lives or dies on *realistic device streams*:
temporally correlated, drifting, unlabeled input (§IV-A).  This module
makes the stream shape a first-class, pluggable component, exactly the
way policies and backends already are:

* :class:`StreamSource` — the protocol every stream implements
  (``next_segment`` / ``segments`` / ``position`` / ``state_dict`` /
  ``load_state_dict``).  :class:`~repro.data.stream.TemporalStream` and
  :class:`~repro.data.drift.DriftStream` satisfy it unchanged.
* :class:`StreamWrapper` — the base for *wrapper* scenarios that
  compose over any :class:`StreamSource`, including other wrappers.
* ``SCENARIOS`` registry (:mod:`repro.registry`) — scenarios register
  with ``@register_scenario`` (wrappers pass ``kind="wrapper"``) and
  are then accepted by name everywhere: ``config.scenario``,
  ``Session.with_scenario``, the CLI's ``--scenario`` flag, and the
  ``scenario-sweep`` experiment.
* Composition syntax — everywhere a scenario name is accepted, a
  *composition* is too: ``corrupted(bursty(imbalanced))`` stacks
  wrappers over a base, with per-node options
  (``corrupted(bursty,noise_std=0.4)``).  The grammar lives in
  :mod:`repro.data.composition`; :func:`canonical_scenario` validates
  and canonicalizes, :func:`create_scenario` builds.
* :func:`create_scenario` — the canonical constructor; the framework
  offers ``dataset, stc, rng, total_samples`` and the factory declares
  what it needs (same offer-vs-option rule as ``create_policy``).

Base scenarios (docs/SCENARIOS.md has the full guide):

==============  ======================================================
``temporal``    fixed STC runs — the paper's base process
``drift``       class-incremental phases (classes unlock over time)
``cyclic-drift``  disjoint environments that *recur*, testing
                whether a policy's buffer forgets a revisited world
``bursty``      variable run lengths: calm STC runs punctuated by
                long same-class bursts (run-length schedule)
``imbalanced``  long-tailed class frequencies (head classes dominate)
==============  ======================================================

Wrapper scenarios (compose over any base, or each other):

===============  =====================================================
``corrupted``    per-phase noise/blur input shift; labels pass
                 through bitwise
``label-shift``  per-phase class-frequency re-weighting (the favored
                 class group rotates over time — distinct from
                 ``imbalanced``'s static long tail)
``adversarial``  worst-case phase ordering: pulls a lookahead of
                 windows from the base and greedily schedules the
                 most-dissimilar environment next, maximizing
                 forgetting pressure
===============  =====================================================

``bursty`` is a *hybrid*: used as a leaf it is the base scenario above,
but given a wrapped scenario (``bursty(imbalanced)``) it becomes a
re-timing wrapper that stretches the base's same-class runs into
bursts — which is what makes the flagship composition
``corrupted(bursty(imbalanced))`` well-formed.

Wrapper determinism: each wrapper layer draws from its own generator
*derived* from the offered stream RNG (:func:`derive_wrapper_rng`)
without ever advancing it, so the base label process is bitwise
independent of which wrappers sit on top — the identity and
order-independence laws the property suite checks.  The derived
generator state rides the wrapper's ``state_dict``, keeping mid-stream
checkpoint/resume bitwise.
"""

from __future__ import annotations

import base64
import zlib
from typing import Iterator, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.data.composition import (
    ScenarioExpr,
    format_scenario,
    is_composition,
    parse_scenario,
)
from repro.data.drift import DriftStream, growing_phases
from repro.data.stream import StreamSegment, TemporalStream, _segment_iterator
from repro.data.synthetic import SyntheticImageDataset
from repro.registry import SCENARIOS, register_scenario

__all__ = [
    "StreamSource",
    "StreamWrapper",
    "create_scenario",
    "canonical_scenario",
    "derive_wrapper_rng",
    "disjoint_phases",
    "CyclicDriftStream",
    "BurstyStream",
    "ImbalancedStream",
    "CorruptedStream",
    "LabelShiftStream",
    "AdversarialStream",
    "BurstyWrapper",
]


@runtime_checkable
class StreamSource(Protocol):
    """The contract every stream scenario implements.

    A stream source is a *stateful process*: each ``next_segment`` call
    advances it, ``position`` counts samples emitted so far, and the
    ``state_dict``/``load_state_dict`` pair checkpoints the process
    counters (the driving RNG is owned and checkpointed by the caller's
    :class:`~repro.utils.rng.RngRegistry`; wrapper layers checkpoint
    their own derived generators inside ``state_dict``).  Labels
    carried by the produced :class:`~repro.data.stream.StreamSegment`
    are for *evaluation only* — the framework never shows them to
    selection policies.
    """

    def next_segment(self, segment_size: int) -> StreamSegment: ...

    def segments(
        self, segment_size: int, total_samples: int
    ) -> Iterator[StreamSegment]: ...

    @property
    def position(self) -> int: ...

    def state_dict(self) -> dict: ...

    def load_state_dict(self, state: dict) -> None: ...


# ----------------------------------------------------------------------
# Wrapper RNG derivation and array codec (checkpointable lookahead).
# ----------------------------------------------------------------------
def derive_wrapper_rng(
    rng: np.random.Generator, layer: int, name: str
) -> np.random.Generator:
    """Derive a wrapper layer's private generator from the stream RNG.

    The offered generator is *probed*, never advanced: its state is
    cloned into a scratch generator whose single draw seeds a
    ``SeedSequence`` together with the layer index and the wrapper
    name.  Consequences, both load-bearing for the algebra laws:

    * the base label process is bitwise identical with or without any
      stack of wrappers on top (wrappers never consume base draws), and
    * two different wrappers — or the same wrapper at two depths — get
      decorrelated streams even though all derive from one seed.
    """
    scratch = np.random.Generator(type(rng.bit_generator)())
    scratch.bit_generator.state = rng.bit_generator.state
    probe = int(scratch.integers(0, 2**63))
    entropy = [probe, int(layer), zlib.crc32(name.encode("ascii"))]
    return np.random.default_rng(np.random.SeedSequence(entropy=entropy))


def _encode_array(array: np.ndarray) -> dict:
    """Lossless JSON-safe encoding of one ndarray (dtype/shape/bytes)."""
    data = np.ascontiguousarray(array)
    return {
        "dtype": str(data.dtype),
        "shape": list(data.shape),
        "data": base64.b64encode(data.tobytes()).decode("ascii"),
    }


def _decode_array(payload: dict) -> np.ndarray:
    raw = base64.b64decode(payload["data"].encode("ascii"))
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(payload["shape"]).copy()


# ----------------------------------------------------------------------
# The wrapper base: compose over any StreamSource, including wrappers.
# ----------------------------------------------------------------------
class StreamWrapper:
    """Base class for scenarios that compose over another stream.

    A wrapper delegates the *process* (position, base checkpoint state,
    the driving ``rng``) to the wrapped source and transforms the
    segments flowing through.  Subclasses override
    :meth:`transform_segment` (per-segment rewrites) or
    :meth:`next_segment` itself (wrappers that re-time the base, like
    ``adversarial``).

    ``label_contract`` declares what the wrapper may do to labels, and
    the fuzzer enforces it on every composition:

    * ``"bitwise"`` — output labels equal base labels elementwise
      (``corrupted``: only images change);
    * ``"subset"`` — every emitted (image, label) pair is drawn intact
      from base output, so emitted labels form a multiset subset of the
      labels the base produced (``label-shift``, ``adversarial``).
    """

    #: "bitwise" or "subset"; see class docstring.
    label_contract = "bitwise"

    def __init__(
        self, base: StreamSource, rng: Optional[np.random.Generator] = None
    ) -> None:
        self.base = base
        self.wrapper_rng = rng

    @property
    def rng(self) -> np.random.Generator:
        """The *driving* generator: the innermost base's RNG.

        Callers that checkpoint "the stream rng" (RngRegistry, the
        resume tests) keep working unchanged on any composition depth;
        each wrapper's private derived generator travels inside
        :meth:`state_dict` instead.
        """
        return self.base.rng

    def transform_segment(self, segment: StreamSegment) -> StreamSegment:
        raise NotImplementedError

    def next_segment(self, segment_size: int) -> StreamSegment:
        return self.transform_segment(self.base.next_segment(segment_size))

    def segments(
        self, segment_size: int, total_samples: int
    ) -> Iterator[StreamSegment]:
        """Iterate transformed segments (arguments validated eagerly)."""
        return _segment_iterator(self, segment_size, total_samples)

    @property
    def position(self) -> int:
        return self.base.position

    def state_dict(self) -> dict:
        state = {"base": self.base.state_dict()}
        if self.wrapper_rng is not None:
            state["wrapper_rng"] = self.wrapper_rng.bit_generator.state
        return state

    def load_state_dict(self, state: dict) -> None:
        self.base.load_state_dict(state["base"])
        if self.wrapper_rng is not None:
            self.wrapper_rng.bit_generator.state = state["wrapper_rng"]


def create_scenario(
    name: str,
    *,
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    **extra,
) -> StreamSource:
    """Construct a stream scenario by registered name or composition.

    ``name`` may be a plain registered name (``"bursty"``), a name with
    inline options (``"bursty(burst_prob=0.5)"``), or a wrapper
    composition (``"corrupted(bursty(imbalanced))"``).

    The standard keyword set (``dataset``, ``stc``, ``rng``,
    ``total_samples``) is *offered* to each registered factory, which
    receives only the keywords its signature declares.  Keys the caller
    adds via ``extra`` are explicit options applied to the outermost
    node: a factory that does not accept one raises ``TypeError``
    (mirroring :func:`repro.registry.create_policy`).

    Validation errors inside a composition are re-raised with the
    composition path down to the failing node, e.g.
    ``corrupted(bursty(...)): burst_prob must be in [0, 1], got 3``.
    """
    expr = parse_scenario(name)
    return _build_expr(
        expr,
        dataset=dataset,
        stc=stc,
        rng=rng,
        total_samples=total_samples,
        extra=extra,
    )


def canonical_scenario(name: str) -> str:
    """Resolve a scenario name or composition to its canonical form.

    Plain names collapse aliases exactly like ``SCENARIOS.get(...).name``
    did; compositions additionally canonicalize every node's name and
    re-render with the canonical grammar (no whitespace, stable option
    formatting), so the returned string round-trips bitwise through
    checkpoints and sweep wire payloads.  Structural errors (unknown
    node, base used as wrapper) are raised eagerly, naming the failing
    node's composition path.
    """
    expr = parse_scenario(name)
    if expr.child is None and not expr.options:
        # plain name: behave exactly like SCENARIOS.get (including the
        # UnknownComponentError type existing callers catch as KeyError)
        return SCENARIOS.get(expr.name).name
    nodes = list(expr.walk())
    canonical: List[str] = []
    for depth, node in enumerate(nodes):
        try:
            entry = SCENARIOS.get(node.name)
        except KeyError as error:
            raise _path_error(ValueError, expr, depth, str(error)) from error
        if node.child is not None and not _can_wrap(entry):
            raise _path_error(
                ValueError,
                expr,
                depth,
                f"{entry.name!r} is a base scenario, not a wrapper — it "
                f"cannot compose over {node.child.name!r}",
            )
        if node.child is not None and "base" in node.option_dict:
            raise _path_error(
                ValueError,
                expr,
                depth,
                "give the wrapped scenario either in parentheses or via "
                "base=..., not both",
            )
        canonical.append(entry.name)
    rebuilt: Optional[ScenarioExpr] = None
    for node_name, node in zip(reversed(canonical), reversed(nodes)):
        rebuilt = ScenarioExpr(node_name, child=rebuilt, options=node.options)
    return format_scenario(rebuilt)


def _can_wrap(entry) -> bool:
    """Whether a registry entry may take a wrapped scenario in composition.

    True for dedicated wrappers (``kind="wrapper"`` metadata) and for
    hybrids like ``bursty`` that register ``composes=True``.
    """
    return entry.metadata.get("kind") == "wrapper" or bool(
        entry.metadata.get("composes")
    )


def _path_error(
    kind: type, expr: ScenarioExpr, depth: int, message: str
) -> Exception:
    """Build ``kind`` carrying ``message`` prefixed with the composition
    path down to the failing node (child shown, deeper layers elided).

    Failing at ``bursty`` inside ``corrupted(bursty(imbalanced))``
    yields the prefix ``corrupted(bursty(imbalanced(...)))`` — enough
    to locate the node without repeating every option.
    """
    names = [node.name for node in expr.walk()]
    shown = names[: depth + 2]
    elided = len(names) > len(shown)
    path = shown[-1] + ("(...)" if elided else "")
    for outer in reversed(shown[:-1]):
        path = f"{outer}({path})"
    return kind(f"{path}: {message}")


def _build_expr(
    expr: ScenarioExpr,
    *,
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    extra: dict,
) -> StreamSource:
    nodes = list(expr.walk())  # outermost first
    # plain-name calls keep their bare error messages (back-compat);
    # anything written in composition syntax gets the path prefix.
    composed = expr.child is not None or bool(expr.options)
    source: Optional[StreamSource] = None
    for depth in range(len(nodes) - 1, -1, -1):
        node = nodes[depth]
        options = node.option_dict
        if depth == 0:
            clash = sorted(set(options) & set(extra))
            if clash:
                message = (
                    "option(s) given both inline and as keyword arguments: "
                    f"{', '.join(clash)}"
                )
                if composed:
                    raise _path_error(TypeError, expr, depth, message)
                raise TypeError(f"scenario {node.name!r}: {message}")
            options.update(extra)
        if node.child is not None and "base" in options:
            raise _path_error(
                ValueError,
                expr,
                depth,
                "give the wrapped scenario either in parentheses or via "
                "base=..., not both",
            )
        try:
            entry = SCENARIOS.get(node.name)
            if node.child is not None and not _can_wrap(entry):
                raise ValueError(
                    f"{entry.name!r} is a base scenario, not a wrapper — it "
                    f"cannot compose over {node.child.name!r}"
                )
            source = SCENARIOS.create_with_required(
                node.name,
                tuple(options),
                dataset=dataset,
                stc=stc,
                rng=rng,
                total_samples=total_samples,
                base_source=source,
                wrapper_layer=depth,
                **options,
            )
        except (ValueError, TypeError) as error:
            if not composed:
                raise
            kind = ValueError if isinstance(error, KeyError) else type(error)
            raise _path_error(kind, expr, depth, str(error)) from error
        if not isinstance(source, StreamSource):
            raise TypeError(
                f"scenario {node.name!r} built a {type(source).__name__}, "
                "expected a StreamSource "
                "(next_segment/segments/position/state_dict)"
            )
    return source


def disjoint_phases(num_classes: int, num_phases: int) -> List[List[int]]:
    """Split the class population into ``num_phases`` disjoint slices.

    The complement of :func:`~repro.data.drift.growing_phases`: each
    phase is a *different world* with no class overlap — the shape that
    makes recurring environments (``cyclic-drift``) measure forgetting.
    """
    if num_phases < 1:
        raise ValueError(f"num_phases must be >= 1, got {num_phases}")
    if num_classes < num_phases:
        raise ValueError(
            f"need at least one class per phase: {num_classes} classes, "
            f"{num_phases} phases"
        )
    bounds = np.linspace(0, num_classes, num_phases + 1).astype(int)
    return [list(range(bounds[i], bounds[i + 1])) for i in range(num_phases)]


class CyclicDriftStream(DriftStream):
    """Drift whose phases *recur* instead of persisting.

    ``DriftStream`` clamps to the final phase forever; here the phase
    index cycles (``(position // phase_length) % num_phases``), so a
    previously seen environment returns and the run measures whether
    the buffer still serves it — the forgetting axis of the paper's
    "adapt to new environments" story.
    """

    def phase_index(self, position: Optional[int] = None) -> int:
        """Phase active at ``position``, cycling through all phases."""
        position = self._position if position is None else position
        return (position // self.phase_length) % len(self.phases)


class BurstyStream(TemporalStream):
    """Variable STC schedule: calm runs punctuated by long bursts.

    Each new run draws its length — ``burst_stc`` with probability
    ``burst_prob``, else the base ``stc`` — modelling a camera that
    mostly pans across subjects but occasionally fixates (a parked car,
    a sleeping animal).  The empirical STC therefore *varies over
    time*, which no fixed-``stc`` grid point of the paper's Table 2
    exercises.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        stc: int,
        rng: np.random.Generator,
        burst_stc: Optional[int] = None,
        burst_prob: float = 0.25,
        forbid_repeat: bool = True,
    ) -> None:
        super().__init__(dataset, stc, rng, forbid_repeat=forbid_repeat)
        burst_stc = 4 * self.stc if burst_stc is None else int(burst_stc)
        if burst_stc < 1:
            raise ValueError(f"burst_stc must be >= 1, got {burst_stc}")
        if not 0.0 <= burst_prob <= 1.0:
            raise ValueError(f"burst_prob must be in [0, 1], got {burst_prob}")
        self.burst_stc = burst_stc
        self.burst_prob = float(burst_prob)

    def _next_run_length(self) -> int:
        if self.rng.random() < self.burst_prob:
            return self.burst_stc
        return self.stc


class ImbalancedStream(TemporalStream):
    """Long-tailed class frequencies over an otherwise-correlated stream.

    Class ``k`` is drawn with probability proportional to
    ``imbalance ** (k / (K - 1))`` — a geometric decay whose head/tail
    frequency ratio is exactly ``1 / imbalance``.  Selection policies
    that only chase high scores can starve the tail; the buffer
    diversity column of the robustness table shows it.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        stc: int,
        rng: np.random.Generator,
        imbalance: float = 0.1,
        forbid_repeat: bool = True,
    ) -> None:
        super().__init__(dataset, stc, rng, forbid_repeat=forbid_repeat)
        if not 0.0 < imbalance <= 1.0:
            raise ValueError(f"imbalance must be in (0, 1], got {imbalance}")
        self.imbalance = float(imbalance)
        k = dataset.num_classes
        weights = np.power(imbalance, np.arange(k) / max(k - 1, 1))
        self.class_probs = weights / weights.sum()

    def _next_class(self) -> int:
        probs = self.class_probs
        if self.forbid_repeat and self._current_class is not None:
            probs = probs.copy()
            probs[self._current_class] = 0.0
            probs = probs / probs.sum()
        return int(self.rng.choice(self.dataset.num_classes, p=probs))


def _box_blur(images: np.ndarray) -> np.ndarray:
    """3×3 circular box blur over the spatial axes of an NCHW batch."""
    out = np.zeros(images.shape, dtype=np.float64)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            out += np.roll(np.roll(images, dy, axis=2), dx, axis=3)
    return out / 9.0


class CorruptedStream(StreamWrapper):
    """Per-phase corruption shift composed on top of any base scenario.

    Sample ``i`` passes through corruption level
    ``(i // phase_length) % levels``: level 0 is clean, higher levels
    add Gaussian pixel noise of linearly increasing strength, and the
    top level additionally box-blurs (when ``blur``).  The *input
    distribution* therefore shifts while the *label process* is
    whatever the wrapped base scenario produces — labels pass through
    untouched (``label_contract="bitwise"``), preserving the segment
    label-isolation contract at any nesting depth.
    """

    label_contract = "bitwise"

    def __init__(
        self,
        base: StreamSource,
        rng: np.random.Generator,
        phase_length: int,
        levels: int = 3,
        noise_std: float = 0.2,
        blur: bool = True,
    ) -> None:
        if phase_length < 1:
            raise ValueError(f"phase_length must be >= 1, got {phase_length}")
        if levels < 2:
            raise ValueError(f"need >= 2 corruption levels, got {levels}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        super().__init__(base, rng)
        self.phase_length = int(phase_length)
        self.levels = int(levels)
        self.noise_std = float(noise_std)
        self.blur = bool(blur)

    # ------------------------------------------------------------------
    def corruption_level(self, position: int) -> int:
        """Corruption level applied to the sample at ``position``."""
        return (position // self.phase_length) % self.levels

    def _corrupt(self, images: np.ndarray, start: int) -> np.ndarray:
        levels = self.corruption_level(start + np.arange(images.shape[0]))
        images = images.astype(np.float64, copy=True)
        # np.unique is sorted, so the per-level RNG draw order is fixed.
        for level in np.unique(levels):
            if level == 0:
                continue
            mask = levels == level
            chunk = images[mask]
            if self.blur and level == self.levels - 1:
                chunk = _box_blur(chunk)
            std = self.noise_std * (level / (self.levels - 1))
            if std > 0:
                chunk = chunk + self.wrapper_rng.normal(0.0, std, size=chunk.shape)
            images[mask] = chunk
        return np.clip(images, 0.0, 1.0).astype(np.float32)

    def transform_segment(self, segment: StreamSegment) -> StreamSegment:
        images = self._corrupt(segment.images, segment.start_index)
        return StreamSegment(images, segment.labels, segment.start_index)


class LabelShiftStream(StreamWrapper):
    """Per-phase class-frequency re-weighting over any base scenario.

    The class population is split into ``num_phases`` disjoint groups
    (:func:`disjoint_phases`); during phase ``p`` (cycling with
    ``phase_length``), samples whose label falls in group ``p`` keep
    weight 1 while every other sample is down-weighted to ``shift``.
    Each segment is rewritten by a weighted bootstrap resample of its
    own samples (indices sorted, so temporal order survives): the
    *frequency* of classes shifts per phase while every emitted pair is
    a genuine base sample (``label_contract="subset"``).

    Distinct from ``imbalanced``: that is a *static* long tail baked
    into the label process; this is a *rotating* re-weighting layered
    on any process — including ``imbalanced`` itself.
    """

    label_contract = "subset"

    def __init__(
        self,
        base: StreamSource,
        rng: np.random.Generator,
        num_classes: int,
        phase_length: int,
        num_phases: int = 2,
        shift: float = 0.1,
    ) -> None:
        if phase_length < 1:
            raise ValueError(f"phase_length must be >= 1, got {phase_length}")
        if not 0.0 < shift <= 1.0:
            raise ValueError(f"shift must be in (0, 1], got {shift}")
        groups = disjoint_phases(num_classes, num_phases)
        super().__init__(base, rng)
        self.num_classes = int(num_classes)
        self.phase_length = int(phase_length)
        self.num_phases = int(num_phases)
        self.shift = float(shift)
        self.class_group = np.empty(num_classes, dtype=np.int64)
        for group, classes in enumerate(groups):
            self.class_group[classes] = group

    def phase_index(self, position: int) -> int:
        """Favored class group at ``position``, cycling through groups."""
        return (position // self.phase_length) % self.num_phases

    def transform_segment(self, segment: StreamSegment) -> StreamSegment:
        n = segment.labels.shape[0]
        positions = segment.start_index + np.arange(n)
        phases = (positions // self.phase_length) % self.num_phases
        favored = self.class_group[segment.labels] == phases
        weights = np.where(favored, 1.0, self.shift)
        probs = weights / weights.sum()
        idx = np.sort(self.wrapper_rng.choice(n, size=n, replace=True, p=probs))
        return StreamSegment(
            segment.images[idx], segment.labels[idx], segment.start_index
        )


class AdversarialStream(StreamWrapper):
    """Worst-case phase ordering: schedule the most-dissimilar window next.

    Pulls ``lookahead`` windows of ``phase_length`` samples from the
    base per refill, then greedily reorders them to maximize the L1
    distance between consecutive windows' normalized class histograms
    (ties break to the earliest window) — the ordering that maximizes
    forgetting pressure on a replacement buffer.  Samples inside a
    window keep their base order, and every emitted pair is a genuine
    base sample (``label_contract="subset"``).

    The wrapper re-times the base (it reads ahead), so it keeps its own
    ``position`` counter and checkpoints the un-emitted lookahead
    buffers losslessly in ``state_dict`` — mid-stream resume stays
    bitwise even with windows in flight.
    """

    label_contract = "subset"

    def __init__(
        self,
        base: StreamSource,
        rng: np.random.Generator,
        num_classes: int,
        phase_length: int,
        lookahead: int = 4,
    ) -> None:
        if phase_length < 1:
            raise ValueError(f"phase_length must be >= 1, got {phase_length}")
        if lookahead < 2:
            raise ValueError(
                f"lookahead must be >= 2 to reorder anything, got {lookahead}"
            )
        super().__init__(base, rng)
        self.num_classes = int(num_classes)
        self.phase_length = int(phase_length)
        self.lookahead = int(lookahead)
        self._position = 0
        self._offset = 0  # consumed samples within the front pending window
        self._pending: List[Tuple[np.ndarray, np.ndarray]] = []
        self._last_hist: Optional[np.ndarray] = None

    def _histogram(self, labels: np.ndarray) -> np.ndarray:
        counts = np.bincount(labels, minlength=self.num_classes).astype(np.float64)
        total = counts.sum()
        return counts / total if total else counts

    def _refill(self) -> None:
        windows = [
            self.base.next_segment(self.phase_length)
            for _ in range(self.lookahead)
        ]
        hists = [self._histogram(w.labels) for w in windows]
        remaining = list(range(len(windows)))
        last = self._last_hist
        order: List[int] = []
        while remaining:
            if last is None:
                pick = remaining[0]
            else:
                # max histogram distance; ties break to the earliest window
                pick = max(
                    remaining,
                    key=lambda i: (float(np.abs(hists[i] - last).sum()), -i),
                )
            order.append(pick)
            remaining.remove(pick)
            last = hists[pick]
        self._last_hist = last
        self._pending.extend(
            (windows[i].images, windows[i].labels) for i in order
        )

    def next_segment(self, segment_size: int) -> StreamSegment:
        if segment_size < 1:
            raise ValueError(f"segment_size must be >= 1, got {segment_size}")
        images_parts: List[np.ndarray] = []
        labels_parts: List[np.ndarray] = []
        need = segment_size
        while need > 0:
            if not self._pending:
                self._refill()
            images, labels = self._pending[0]
            take = min(need, labels.shape[0] - self._offset)
            images_parts.append(images[self._offset : self._offset + take])
            labels_parts.append(labels[self._offset : self._offset + take])
            self._offset += take
            need -= take
            if self._offset >= labels.shape[0]:
                self._pending.pop(0)
                self._offset = 0
        start = self._position
        self._position += segment_size
        return StreamSegment(
            np.concatenate(images_parts), np.concatenate(labels_parts), start
        )

    @property
    def position(self) -> int:
        return self._position

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            position=self._position,
            offset=self._offset,
            pending=[
                {"images": _encode_array(i), "labels": _encode_array(l)}
                for i, l in self._pending
            ],
            last_hist=(
                None
                if self._last_hist is None
                else [float(x) for x in self._last_hist]
            ),
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._position = int(state["position"])
        self._offset = int(state["offset"])
        self._pending = [
            (_decode_array(p["images"]), _decode_array(p["labels"]))
            for p in state["pending"]
        ]
        self._last_hist = (
            None
            if state["last_hist"] is None
            else np.asarray(state["last_hist"], dtype=np.float64)
        )


class BurstyWrapper(StreamWrapper):
    """Re-timing wrapper: stretch the base's same-class runs into bursts.

    The wrapper pulls the base stream run by run (a *run* is a maximal
    stretch of consecutive same-class samples, probed up to
    ``burst_stc``).  With probability ``burst_prob`` a run is extended
    to ``burst_stc`` samples by resampling frames from within the run —
    a camera fixating on the same subject — otherwise it passes through
    untouched.  The base's *class sequence* is preserved exactly; only
    durations change, so ``bursty(imbalanced)`` is a long-tailed class
    process with a bursty run-length schedule.  Every emitted pair is a
    genuine base sample (``label_contract="subset"``).

    Used when the ``bursty`` scenario is given a wrapped scenario; as a
    leaf, ``bursty`` stays the :class:`BurstyStream` base process.
    """

    label_contract = "subset"

    def __init__(
        self,
        base: StreamSource,
        rng: np.random.Generator,
        stc: int,
        burst_stc: Optional[int] = None,
        burst_prob: float = 0.25,
    ) -> None:
        if stc < 1:
            raise ValueError(f"stc must be >= 1, got {stc}")
        burst_stc = 4 * stc if burst_stc is None else int(burst_stc)
        if burst_stc < 1:
            raise ValueError(f"burst_stc must be >= 1, got {burst_stc}")
        if not 0.0 <= burst_prob <= 1.0:
            raise ValueError(f"burst_prob must be in [0, 1], got {burst_prob}")
        super().__init__(base, rng)
        self.stc = int(stc)
        self.burst_stc = burst_stc
        self.burst_prob = float(burst_prob)
        self._position = 0
        # un-consumed base samples (pulled while probing run boundaries)
        self._buf_images: Optional[np.ndarray] = None
        self._buf_labels: Optional[np.ndarray] = None
        # current (possibly stretched) output run and the emit cursor
        self._run_images: Optional[np.ndarray] = None
        self._run_labels: Optional[np.ndarray] = None
        self._run_pos = 0

    def _pull(self) -> None:
        segment = self.base.next_segment(self.stc)
        if self._buf_labels is None:
            self._buf_images = segment.images
            self._buf_labels = segment.labels
        else:
            self._buf_images = np.concatenate([self._buf_images, segment.images])
            self._buf_labels = np.concatenate([self._buf_labels, segment.labels])

    def _extract_run(self) -> Tuple[np.ndarray, np.ndarray]:
        """Pop the base's leading same-class run (probe cap: burst_stc)."""
        if self._buf_labels is None or self._buf_labels.shape[0] == 0:
            self._pull()
        first = self._buf_labels[0]
        while (
            np.all(self._buf_labels == first)
            and self._buf_labels.shape[0] < self.burst_stc
        ):
            self._pull()
        breaks = np.nonzero(self._buf_labels != first)[0]
        end = int(breaks[0]) if breaks.size else self._buf_labels.shape[0]
        end = min(end, self.burst_stc)
        run = (self._buf_images[:end], self._buf_labels[:end])
        self._buf_images = self._buf_images[end:]
        self._buf_labels = self._buf_labels[end:]
        return run

    def _next_run(self) -> None:
        images, labels = self._extract_run()
        if self.wrapper_rng.random() < self.burst_prob:
            short = self.burst_stc - labels.shape[0]
            if short > 0:
                extra = self.wrapper_rng.integers(0, labels.shape[0], size=short)
                images = np.concatenate([images, images[extra]])
                labels = np.concatenate([labels, labels[extra]])
        self._run_images = images
        self._run_labels = labels
        self._run_pos = 0

    def next_segment(self, segment_size: int) -> StreamSegment:
        if segment_size < 1:
            raise ValueError(f"segment_size must be >= 1, got {segment_size}")
        images_parts: List[np.ndarray] = []
        labels_parts: List[np.ndarray] = []
        need = segment_size
        while need > 0:
            if (
                self._run_labels is None
                or self._run_pos >= self._run_labels.shape[0]
            ):
                self._next_run()
            take = min(need, self._run_labels.shape[0] - self._run_pos)
            images_parts.append(
                self._run_images[self._run_pos : self._run_pos + take]
            )
            labels_parts.append(
                self._run_labels[self._run_pos : self._run_pos + take]
            )
            self._run_pos += take
            need -= take
        start = self._position
        self._position += segment_size
        return StreamSegment(
            np.concatenate(images_parts), np.concatenate(labels_parts), start
        )

    @property
    def position(self) -> int:
        return self._position

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            position=self._position,
            run_pos=self._run_pos,
            buffer=(
                None
                if self._buf_labels is None
                else {
                    "images": _encode_array(self._buf_images),
                    "labels": _encode_array(self._buf_labels),
                }
            ),
            run=(
                None
                if self._run_labels is None
                else {
                    "images": _encode_array(self._run_images),
                    "labels": _encode_array(self._run_labels),
                }
            ),
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._position = int(state["position"])
        self._run_pos = int(state["run_pos"])
        buffer = state["buffer"]
        if buffer is None:
            self._buf_images = self._buf_labels = None
        else:
            self._buf_images = _decode_array(buffer["images"])
            self._buf_labels = _decode_array(buffer["labels"])
        run = state["run"]
        if run is None:
            self._run_images = self._run_labels = None
        else:
            self._run_images = _decode_array(run["images"])
            self._run_labels = _decode_array(run["labels"])


# ----------------------------------------------------------------------
# Built-in scenario factories.
# ----------------------------------------------------------------------
@register_scenario(
    "temporal",
    label="Temporally correlated (fixed STC runs)",
    aliases=("stationary", "stc-runs"),
)
def temporal_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    forbid_repeat: bool = True,
) -> TemporalStream:
    """The paper's base process: exact same-class runs of length STC."""
    return TemporalStream(dataset, stc, rng, forbid_repeat=forbid_repeat)


@register_scenario(
    "drift", label="Class-incremental drift", aliases=("class-incremental",)
)
def drift_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    num_phases: int = 2,
) -> DriftStream:
    """Growing phases that cumulatively unlock classes (ablation F)."""
    phases = growing_phases(dataset.num_classes, num_phases)
    phase_length = max(1, total_samples // num_phases)
    return DriftStream(dataset, stc, rng, phases=phases, phase_length=phase_length)


@register_scenario(
    "cyclic-drift", label="Recurring environments", aliases=("cyclic", "recurring")
)
def cyclic_drift_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    num_environments: int = 2,
    cycles: int = 2,
) -> CyclicDriftStream:
    """Disjoint environments visited round-robin, ``cycles`` times each."""
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    phases = disjoint_phases(dataset.num_classes, num_environments)
    phase_length = max(1, total_samples // (num_environments * cycles))
    return CyclicDriftStream(
        dataset, stc, rng, phases=phases, phase_length=phase_length
    )


@register_scenario(
    "bursty",
    label="Variable STC run lengths",
    aliases=("burst",),
    composes=True,
)
def bursty_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    base_source: Optional[StreamSource] = None,
    wrapper_layer: int = 0,
    burst_stc: Optional[int] = None,
    burst_prob: float = 0.25,
    forbid_repeat: bool = True,
) -> StreamSource:
    """Calm ``stc`` runs punctuated by ``burst_stc`` bursts.

    As a leaf this is the :class:`BurstyStream` base process; given a
    wrapped scenario (``bursty(imbalanced)``) it becomes the
    :class:`BurstyWrapper` re-timing layer over that base
    (``forbid_repeat`` applies only to the leaf form).
    """
    if base_source is not None:
        return BurstyWrapper(
            base_source,
            rng=derive_wrapper_rng(rng, wrapper_layer, "bursty"),
            stc=stc,
            burst_stc=burst_stc,
            burst_prob=burst_prob,
        )
    return BurstyStream(
        dataset,
        stc,
        rng,
        burst_stc=burst_stc,
        burst_prob=burst_prob,
        forbid_repeat=forbid_repeat,
    )


@register_scenario(
    "imbalanced", label="Long-tailed class frequencies", aliases=("long-tail",)
)
def imbalanced_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    imbalance: float = 0.1,
    forbid_repeat: bool = True,
) -> ImbalancedStream:
    """Geometric class-frequency decay with head/tail ratio 1/imbalance."""
    return ImbalancedStream(
        dataset, stc, rng, imbalance=imbalance, forbid_repeat=forbid_repeat
    )


def _resolve_base(
    wrapper_name: str,
    base_source: Optional[StreamSource],
    base: str,
    *,
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    base_options: dict,
) -> StreamSource:
    """The shared base-construction rule for wrapper factories.

    A composition hands the already-built wrapped source in via
    ``base_source``; the legacy ``base="name"`` option (plus forwarded
    ``base_options``) builds it here.  Mixing explicit composition with
    ``base_options`` is rejected — those options belong to the inner
    node's own parentheses.
    """
    if base_source is not None:
        if base_options:
            raise TypeError(
                f"{wrapper_name} does not accept option(s): "
                f"{', '.join(sorted(base_options))} (give options for the "
                "wrapped scenario inside its own parentheses)"
            )
        return base_source
    if not is_composition(base):
        if SCENARIOS.get(base).name == wrapper_name:
            raise ValueError(f"the {wrapper_name} scenario cannot wrap itself")
    return create_scenario(
        base,
        dataset=dataset,
        stc=stc,
        rng=rng,
        total_samples=total_samples,
        **base_options,
    )


@register_scenario(
    "corrupted",
    label="Per-phase corruption shift",
    aliases=("noisy",),
    kind="wrapper",
)
def corrupted_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    base: str = "temporal",
    base_source: Optional[StreamSource] = None,
    wrapper_layer: int = 0,
    corruption_levels: int = 3,
    corruption_phase_length: Optional[int] = None,
    noise_std: float = 0.2,
    blur: bool = True,
    **base_options,
) -> CorruptedStream:
    """Compose per-phase corruption on top of any *other* base scenario.

    ``base_options`` are forwarded to the base scenario's factory under
    the usual explicit-option rule.  The default phase length walks
    through all corruption levels twice over the stream.
    """
    source = _resolve_base(
        "corrupted",
        base_source,
        base,
        dataset=dataset,
        stc=stc,
        rng=rng,
        total_samples=total_samples,
        base_options=base_options,
    )
    if corruption_phase_length is None:
        corruption_phase_length = max(1, total_samples // (corruption_levels * 2))
    return CorruptedStream(
        source,
        rng=derive_wrapper_rng(rng, wrapper_layer, "corrupted"),
        phase_length=corruption_phase_length,
        levels=corruption_levels,
        noise_std=noise_std,
        blur=blur,
    )


@register_scenario(
    "label-shift",
    label="Per-phase class-frequency re-weighting",
    aliases=("labelshift",),
    kind="wrapper",
)
def label_shift_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    base: str = "temporal",
    base_source: Optional[StreamSource] = None,
    wrapper_layer: int = 0,
    num_phases: int = 2,
    shift: float = 0.1,
    shift_phase_length: Optional[int] = None,
    **base_options,
) -> LabelShiftStream:
    """Rotate which class group dominates, on top of any base scenario.

    The default phase length visits every class group twice over the
    stream.
    """
    source = _resolve_base(
        "label-shift",
        base_source,
        base,
        dataset=dataset,
        stc=stc,
        rng=rng,
        total_samples=total_samples,
        base_options=base_options,
    )
    if shift_phase_length is None:
        shift_phase_length = max(1, total_samples // (num_phases * 2))
    return LabelShiftStream(
        source,
        rng=derive_wrapper_rng(rng, wrapper_layer, "label-shift"),
        num_classes=dataset.num_classes,
        phase_length=shift_phase_length,
        num_phases=num_phases,
        shift=shift,
    )


@register_scenario(
    "adversarial",
    label="Worst-case phase ordering",
    aliases=("worst-case",),
    kind="wrapper",
)
def adversarial_scenario(
    dataset: SyntheticImageDataset,
    stc: int,
    rng: np.random.Generator,
    total_samples: int,
    base: str = "temporal",
    base_source: Optional[StreamSource] = None,
    wrapper_layer: int = 0,
    lookahead: int = 4,
    adversarial_phase_length: Optional[int] = None,
    **base_options,
) -> AdversarialStream:
    """Greedy most-dissimilar-next window ordering over any base scenario.

    The default phase length yields ``2 * lookahead`` reordered windows
    over the stream.
    """
    source = _resolve_base(
        "adversarial",
        base_source,
        base,
        dataset=dataset,
        stc=stc,
        rng=rng,
        total_samples=total_samples,
        base_options=base_options,
    )
    if adversarial_phase_length is None:
        adversarial_phase_length = max(1, total_samples // (lookahead * 2))
    return AdversarialStream(
        source,
        rng=derive_wrapper_rng(rng, wrapper_layer, "adversarial"),
        num_classes=dataset.num_classes,
        phase_length=adversarial_phase_length,
        lookahead=lookahead,
    )
