"""Data substrate: synthetic datasets, the stream-scenario zoo
(:mod:`repro.data.scenarios` — temporal, drift, cyclic-drift, bursty,
imbalanced, corrupted), augmentations, and label splits — the stand-in
for the paper's CIFAR/SVHN/ImageNet streaming inputs.
"""

from repro.data.augment import (
    SimCLRAugment,
    color_jitter,
    horizontal_flip,
    random_crop_resize,
    random_grayscale,
    random_horizontal_flip,
)
from repro.data.datasets import (
    DATASET_REGISTRY,
    dataset_names,
    get_dataset_config,
    make_dataset,
)
from repro.data.drift import DriftStream, growing_phases
from repro.data.resize import bilinear_resize, crop_resize_batch, grid_sample_bilinear
from repro.data.scenarios import (
    BurstyStream,
    CorruptedStream,
    CyclicDriftStream,
    ImbalancedStream,
    StreamSource,
    create_scenario,
    disjoint_phases,
)
from repro.data.splits import labeled_subset, train_test_split
from repro.data.stream import StreamSegment, TemporalStream, measure_stc
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset

__all__ = [
    "SyntheticConfig",
    "SyntheticImageDataset",
    "DATASET_REGISTRY",
    "dataset_names",
    "get_dataset_config",
    "make_dataset",
    "StreamSegment",
    "StreamSource",
    "DriftStream",
    "growing_phases",
    "disjoint_phases",
    "TemporalStream",
    "CyclicDriftStream",
    "BurstyStream",
    "ImbalancedStream",
    "CorruptedStream",
    "create_scenario",
    "measure_stc",
    "SimCLRAugment",
    "horizontal_flip",
    "random_horizontal_flip",
    "random_crop_resize",
    "color_jitter",
    "random_grayscale",
    "bilinear_resize",
    "crop_resize_batch",
    "grid_sample_bilinear",
    "labeled_subset",
    "train_test_split",
]
