"""Label-fraction splits for stage-2 classifier training.

The paper trains the classifier with 1%, 10%, or 100% labeled data; in
the on-device story these are the few samples sent to a server for
labeling.  :func:`labeled_subset` performs the stratified selection.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["labeled_subset", "train_test_split"]


def labeled_subset(
    labels: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Indices of a stratified ``fraction`` subset of ``labels``.

    Guarantees at least one sample per class that appears in ``labels``
    (a classifier cannot learn a class with zero examples), so very
    small fractions on many-class datasets select slightly more than
    ``fraction`` of the data.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.size == 0:
        raise ValueError("labels must be a non-empty 1-D array")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if fraction == 1.0:
        return np.arange(labels.size)
    picked = []
    for cls in np.unique(labels):
        idx = np.flatnonzero(labels == cls)
        count = max(1, int(round(fraction * idx.size)))
        picked.append(rng.choice(idx, size=count, replace=False))
    out = np.concatenate(picked)
    rng.shuffle(out)
    return out


def train_test_split(
    images: np.ndarray,
    labels: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test: ``(x_tr, y_tr, x_te, y_te)``."""
    labels = np.asarray(labels)
    if images.shape[0] != labels.shape[0]:
        raise ValueError(
            f"images/labels length mismatch: {images.shape[0]} vs {labels.shape[0]}"
        )
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    order = rng.permutation(labels.size)
    n_test = max(1, int(round(test_fraction * labels.size)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return images[train_idx], labels[train_idx], images[test_idx], labels[test_idx]
