"""Environment drift: streams whose class population changes over time.

The paper motivates on-device learning with devices deployed "to an
unknown environment" that must adapt as the world changes.  A
:class:`DriftStream` models that: the stream progresses through
*phases*, each exposing a subset of the dataset's classes, while within
a phase samples remain temporally correlated (STC runs) exactly like
:class:`~repro.data.stream.TemporalStream`.

The interesting dynamics for the paper's policy: when a phase boundary
introduces never-seen classes, their contrast scores are high (the
encoder cannot embed them invariantly yet), so contrast scoring floods
the buffer with the new environment's data and adapts quickly, while
random replacement dilutes it into the reservoir.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.data.stream import StreamSegment, _segment_iterator
from repro.data.synthetic import SyntheticImageDataset

__all__ = ["DriftStream", "growing_phases"]


def growing_phases(num_classes: int, num_phases: int) -> List[List[int]]:
    """Phases that cumulatively unlock classes (0..k1, 0..k2, ...).

    Classic class-incremental drift: every phase adds a fresh slice of
    classes while keeping the old ones in circulation.
    """
    if num_phases < 1:
        raise ValueError(f"num_phases must be >= 1, got {num_phases}")
    if num_classes < num_phases:
        raise ValueError(
            f"need at least one new class per phase: {num_classes} classes, "
            f"{num_phases} phases"
        )
    boundaries = np.linspace(0, num_classes, num_phases + 1).astype(int)[1:]
    return [list(range(b)) for b in boundaries]


class DriftStream:
    """Temporally correlated stream over a changing class population.

    Parameters
    ----------
    dataset: generative dataset.
    stc: same-class run length within a phase.
    rng: randomness for class choices and sample noise.
    phases: one class-id list per phase.
    phase_length: stream samples per phase; after the last phase the
        stream stays in it indefinitely.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        stc: int,
        rng: np.random.Generator,
        phases: Sequence[Sequence[int]],
        phase_length: int,
    ) -> None:
        if stc < 1:
            raise ValueError(f"stc must be >= 1, got {stc}")
        if phase_length < 1:
            raise ValueError(f"phase_length must be >= 1, got {phase_length}")
        if not phases:
            raise ValueError("need at least one phase")
        for i, phase in enumerate(phases):
            if not phase:
                raise ValueError(f"phase {i} has no classes")
            ids = np.asarray(phase)
            if ids.min() < 0 or ids.max() >= dataset.num_classes:
                raise ValueError(
                    f"phase {i} references classes outside "
                    f"[0, {dataset.num_classes})"
                )
        self.dataset = dataset
        self.stc = int(stc)
        self.rng = rng
        self.phases = [list(p) for p in phases]
        self.phase_length = int(phase_length)
        self._position = 0
        self._current_class: Optional[int] = None
        self._remaining_in_run = 0

    # ------------------------------------------------------------------
    def phase_index(self, position: Optional[int] = None) -> int:
        """Phase active at ``position`` (defaults to the current one)."""
        position = self._position if position is None else position
        return min(position // self.phase_length, len(self.phases) - 1)

    def active_classes(self, position: Optional[int] = None) -> List[int]:
        """Classes circulating at ``position``."""
        return list(self.phases[self.phase_index(position)])

    def _next_class(self, pool: Sequence[int]) -> int:
        if len(pool) == 1:
            return int(pool[0])
        choices = [c for c in pool if c != self._current_class]
        return int(choices[self.rng.integers(0, len(choices))])

    def next_labels(self, count: int) -> np.ndarray:
        """The next ``count`` class ids, respecting phases and runs.

        Advances the stream position (phases are position-driven).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            pool = self.active_classes(self._position)
            run_invalid = (
                self._remaining_in_run == 0 or self._current_class not in pool
            )
            if run_invalid:
                self._current_class = self._next_class(pool)
                self._remaining_in_run = self.stc
            out[i] = self._current_class
            self._remaining_in_run -= 1
            self._position += 1
        return out

    def next_segment(self, segment_size: int) -> StreamSegment:
        start = self._position
        labels = self.next_labels(segment_size)
        images = self.dataset.sample(labels, self.rng)
        return StreamSegment(images, labels, start)

    def segments(
        self, segment_size: int, total_samples: int
    ) -> Iterator[StreamSegment]:
        """Iterate segments until ``total_samples`` inputs have streamed.

        Arguments are validated eagerly (here, not on first iteration).
        """
        return _segment_iterator(self, segment_size, total_samples)

    @property
    def position(self) -> int:
        return self._position

    def state_dict(self) -> dict:
        """Stream-process counters (JSON-serializable) for checkpointing.

        Mirrors :meth:`TemporalStream.state_dict`: the RNG is owned and
        checkpointed by the caller's ``RngRegistry``, not here.
        """
        return {
            "position": self._position,
            "current_class": self._current_class,
            "remaining_in_run": self._remaining_in_run,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore counters written by :meth:`state_dict`."""
        self._position = int(state["position"])
        current = state["current_class"]
        self._current_class = None if current is None else int(current)
        self._remaining_in_run = int(state["remaining_in_run"])
