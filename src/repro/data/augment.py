"""Image augmentations.

Two distinct families, per the paper:

* **Strong (stochastic) augmentation** for training — SimCLR-style
  random crop + resize, random horizontal flip, color jitter, and
  random grayscale.  :class:`SimCLRAugment` composes these into the
  two-view transform used by the contrastive loss (Eq. 1).
* **Weak (deterministic) augmentation** for scoring — *only* a
  horizontal flip.  The paper's "Contrast Score Design Principle"
  requires the scoring view to be deterministic so the score reflects
  the encoder's capability, not augmentation randomness;
  :func:`horizontal_flip` is exactly that view.

All functions take and return float32 NCHW batches in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.resize import crop_resize_batch
from repro.registry import register_augment

__all__ = [
    "horizontal_flip",
    "random_horizontal_flip",
    "random_crop_resize",
    "color_jitter",
    "random_grayscale",
    "SimCLRAugment",
]


def _check_batch(images: np.ndarray) -> None:
    if images.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {images.shape}")


def horizontal_flip(images: np.ndarray) -> np.ndarray:
    """Deterministic horizontal flip of every image (the scoring view)."""
    _check_batch(images)
    return np.ascontiguousarray(images[:, :, :, ::-1])


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, p: float = 0.5
) -> np.ndarray:
    """Flip each image independently with probability ``p``."""
    _check_batch(images)
    flip = rng.random(images.shape[0]) < p
    out = images.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_crop_resize(
    images: np.ndarray,
    rng: np.random.Generator,
    min_scale: float = 0.6,
    max_scale: float = 1.0,
) -> np.ndarray:
    """Random square crop (area scale in [min_scale, max_scale]) + resize back."""
    _check_batch(images)
    if not 0.0 < min_scale <= max_scale <= 1.0:
        raise ValueError(
            f"need 0 < min_scale <= max_scale <= 1, got {min_scale}, {max_scale}"
        )
    n, _, h, w = images.shape
    side_scale = np.sqrt(rng.uniform(min_scale, max_scale, size=n))
    heights = np.maximum(np.round(side_scale * h), 1.0)
    widths = np.maximum(np.round(side_scale * w), 1.0)
    tops = rng.uniform(0.0, h - heights + 1e-9, size=n)
    lefts = rng.uniform(0.0, w - widths + 1e-9, size=n)
    return crop_resize_batch(images, tops, lefts, heights, widths)


def color_jitter(
    images: np.ndarray, rng: np.random.Generator, strength: float = 0.4
) -> np.ndarray:
    """Random brightness / contrast / per-channel gain distortion."""
    _check_batch(images)
    if strength < 0:
        raise ValueError(f"strength must be non-negative, got {strength}")
    n, c, _, _ = images.shape
    brightness = rng.uniform(-strength / 2, strength / 2, size=(n, 1, 1, 1))
    contrast = rng.uniform(1.0 - strength, 1.0 + strength, size=(n, 1, 1, 1))
    channel_gain = rng.uniform(1.0 - strength / 2, 1.0 + strength / 2, size=(n, c, 1, 1))
    mean = images.mean(axis=(2, 3), keepdims=True)
    out = (images - mean) * contrast * channel_gain + mean + brightness
    return np.clip(out, 0.0, 1.0).astype(np.float32)


def random_grayscale(
    images: np.ndarray, rng: np.random.Generator, p: float = 0.2
) -> np.ndarray:
    """Replace all channels by their mean with probability ``p`` per image."""
    _check_batch(images)
    pick = rng.random(images.shape[0]) < p
    if not pick.any():
        return images
    out = images.copy()
    gray = out[pick].mean(axis=1, keepdims=True)
    out[pick] = np.broadcast_to(gray, out[pick].shape)
    return out


@register_augment("simclr", label="SimCLR strong two-view", aliases=("default",))
@dataclass
class SimCLRAugment:
    """The paper's strong two-view augmentation (crop, flip, jitter, gray).

    Calling the instance returns two independently augmented views of
    the batch, as consumed by :func:`repro.nn.losses.nt_xent_loss`.
    """

    min_crop_scale: float = 0.6
    flip_p: float = 0.5
    jitter_strength: float = 0.4
    grayscale_p: float = 0.2

    def augment_once(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One stochastic view of the batch."""
        out = random_crop_resize(images, rng, self.min_crop_scale)
        out = random_horizontal_flip(out, rng, self.flip_p)
        out = color_jitter(out, rng, self.jitter_strength)
        out = random_grayscale(out, rng, self.grayscale_p)
        return out

    def __call__(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Two independent views ``(v1, v2)`` of the batch."""
        return self.augment_once(images, rng), self.augment_once(images, rng)
