"""Persistent worker pool: warm processes reused across fan-outs.

The old parallel path paid worker startup (fork + import + allocator
warmup) on *every* :func:`repro.experiments.parallel.run_jobs` call —
a fleet of R rounds spawned R pools.  This module keeps one pool of
long-lived workers per ``(size, start_method)`` and reuses it across
calls (:func:`get_worker_pool`), which is what lets fleet rounds ship
deltas: a worker that stays alive keeps its decoded state caches.

Design points:

* **Duplex pipes, no queues** — each worker owns one
  ``multiprocessing.Pipe``; the parent multiplexes with
  ``multiprocessing.connection.wait``, so a dead worker surfaces as an
  EOF on its pipe (plus an ``is_alive`` poll as backstop) instead of a
  hang.
* **Crash containment** — a worker dying mid-job yields a
  :class:`WorkerCrashedError` *for that job only*; the worker slot is
  respawned immediately (bumping its :meth:`WorkerPool.generations`
  entry so delta senders know the receiver's caches are gone) and the
  remaining jobs proceed.  ``run_jobs`` turns crashed entries into a
  warned serial re-run.
* **Sticky routing** — ``map(..., sticky=True)`` pins job ``i`` to
  worker ``i % size`` (:meth:`WorkerPool.sticky_worker`), the affinity
  the ``delta`` wire format needs so a channel always decodes in the
  process that holds its cache.
* **Compute-time piggyback** — workers measure their own job seconds
  and send them back, so callers can split wall time into compute vs
  transport (the per-stage instrumentation in the fleet/sweep tables).

Jobs must be module-level callables with picklable payloads — the same
contract ``run_jobs`` always had.  Exceptions raised *by* jobs are
returned (or re-raised) with the remote traceback attached as a note.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "WorkerPool",
    "WorkerCrashedError",
    "get_worker_pool",
    "shutdown_worker_pools",
    "default_start_method",
    "POOL_UNAVAILABLE_ERRORS",
]

#: Exceptions meaning "multiprocessing itself is unavailable here"
#: (restricted sandboxes): callers degrade to serial on these.
POOL_UNAVAILABLE_ERRORS = (ImportError, OSError, PermissionError)

#: Seconds between liveness polls while waiting on worker pipes.
_WAIT_TIMEOUT = 0.1

#: Process-wide generation source.  Every worker process ever started —
#: in any pool, including replacements for closed pools — gets a value
#: no prior worker had, so a delta sender comparing stored generations
#: can never mistake a *new* pool's slot for the one whose caches it
#: remembers (the cross-call leakage a simple per-slot counter allows:
#: close pool A, create pool B, both report generation 0).
_GENERATION_COUNTER = itertools.count(1)

#: True inside a pool worker process (set by ``_worker_main``).  Fault
#: injection uses this to confine deliberate crash faults to child
#: processes: honouring ``os._exit`` in the parent would kill the run
#: instead of exercising the recovery path.
IN_POOL_WORKER = False


def default_start_method() -> str:
    """Preferred multiprocessing start method: ``fork`` where available
    (cheap worker startup on POSIX), else ``spawn``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class WorkerCrashedError(RuntimeError):
    """A pool worker process died mid-job (segfault, OOM kill,
    ``os._exit``) — the job never produced a result or an exception."""

    def __init__(
        self,
        message: str,
        *,
        job_index: Optional[int] = None,
        exitcode: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.job_index = job_index
        self.exitcode = exitcode


def _worker_main(connection: Any) -> None:
    """Worker loop: ``(job_id, fn, payload)`` in, ``(job_id, value,
    error, compute_seconds)`` out, until EOF or a ``None`` sentinel."""
    global IN_POOL_WORKER
    IN_POOL_WORKER = True
    # Telemetry recorded while running jobs ships home with the result
    # piggyback.  Fork start methods copy the parent's module state, so
    # start from a clean slate: drop any inherited metrics (the parent
    # still holds the originals — shipping them back would double-count
    # on merge) and swap any inherited tracer for this worker's own.
    from repro.obs.metrics import reset_metrics
    from repro.obs.trace import ensure_worker_tracer

    reset_metrics()
    ensure_worker_tracer()
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        job_id, fn, payload = message
        start = time.perf_counter()
        try:
            value, error = fn(payload), None
        except BaseException as exc:  # forwarded to the parent, not fatal here
            value, error = None, (exc, traceback.format_exc())
        compute_seconds = time.perf_counter() - start
        try:
            connection.send((job_id, value, error, compute_seconds))
        except Exception as exc:  # unpicklable result/exception: report by repr
            try:
                substitute = RuntimeError(
                    f"job result could not be sent back to the parent: {exc!r}"
                )
                connection.send((job_id, None, (substitute, ""), compute_seconds))
            except Exception:
                break
    try:
        connection.close()
    except OSError:  # pragma: no cover - already torn down
        pass


def _noop(payload: Any) -> None:
    """Warmup job (must be module-level to pickle by name)."""
    return None


class WorkerPool:
    """A fixed-size set of warm worker processes driven over pipes.

    Create via :func:`get_worker_pool` to share pools across callers;
    construct directly only for isolated lifecycles (tests).
    """

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        method = start_method if start_method is not None else default_start_method()
        self._context = multiprocessing.get_context(method)
        self.start_method = method
        self.size = int(workers)
        # Start the resource tracker *before* forking so every worker
        # inherits the parent's tracker: shared-memory segments are
        # created in one process and unlinked in another, and with
        # per-process trackers the creator's would report them as
        # leaked at shutdown (register/unregister must meet in ONE
        # tracker for the lifecycle to look balanced).
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is an optimization
            pass
        self._processes: List[Any] = [None] * self.size
        self._connections: List[Any] = [None] * self.size
        self._generations: List[int] = [0] * self.size
        self._job_seq = 0
        self._closed = False
        for index in range(self.size):
            self._start_worker(index)

    # -- lifecycle ------------------------------------------------------
    def _start_worker(self, index: int) -> None:
        self._generations[index] = next(_GENERATION_COUNTER)
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_end,),
            name=f"repro-pool-{self.size}-{index}",
            daemon=True,
        )
        process.start()
        child_end.close()  # parent must drop its copy so worker death EOFs
        self._processes[index] = process
        self._connections[index] = parent_end

    def _respawn(self, index: int) -> None:
        """Replace a dead worker; bumps its generation so channel-state
        senders (delta wire) know its caches are gone."""
        from repro.obs import metrics

        metrics().counter("pool.respawns").inc()
        process = self._processes[index]
        try:
            self._connections[index].close()
        except OSError:  # pragma: no cover - already closed
            pass
        if process is not None:
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - hung, not dead
                process.terminate()
                process.join(timeout=1.0)
        self._start_worker(index)

    @property
    def alive(self) -> bool:
        """Usable until closed (dead workers respawn on demand)."""
        return not self._closed

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - refuses the sentinel
                process.terminate()
                process.join(timeout=1.0)

    # -- introspection --------------------------------------------------
    def generations(self) -> List[int]:
        """Per-slot process identities: slot ``i``'s value changes
        exactly when its process was replaced (so any process-local
        cache a sender relied on is gone).  Values are unique across
        every pool this parent ever created — two different worker
        processes never share one, even across pool close/recreate."""
        return list(self._generations)

    def sticky_worker(self, key: int) -> int:
        """The slot sticky routing assigns to key ``k`` (the job index
        by default, or the caller's ``sticky_keys[i]`` entry)."""
        return key % self.size

    def worker_pids(self) -> List[int]:
        return [process.pid for process in self._processes]

    def warm(self) -> None:
        """Run a no-op on every worker (absorbs startup cost outside
        timed sections; benchmarks call this before measuring)."""
        self.map(_noop, [None] * self.size, sticky=True)

    # -- execution ------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        sticky: bool = False,
        sticky_keys: Optional[Sequence[int]] = None,
        return_exceptions: bool = False,
        timings: Optional[Dict[str, float]] = None,
    ) -> List[Any]:
        """Run ``fn(payload)`` on the workers; results in payload order.

        ``sticky`` pins job ``i`` to worker ``i % size`` (channel
        affinity); otherwise jobs go to whichever worker frees up.
        ``sticky_keys`` (implies sticky) supplies one routing key per
        payload and pins job ``i`` to worker ``sticky_keys[i] % size``
        instead — this is how a caller whose *job list* varies between
        calls (a sampled fleet round submits only the participants)
        keeps a stable identity glued to a stable worker.
        With ``return_exceptions``, job exceptions and
        :class:`WorkerCrashedError` instances appear in the result list
        instead of being raised; without it, the first error is raised
        after every dispatched job has drained (the pool stays clean
        either way).  ``timings``, if given, receives ``compute_s``
        (sum of worker-measured job seconds), ``transport_s`` (sum of
        parent-observed latency minus compute: pickling, pipes, and
        scheduling), and ``crashes``.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        from repro.obs import metrics

        registry = metrics()
        payloads = list(payloads)
        total = len(payloads)
        if sticky_keys is not None:
            sticky = True
            keys = [int(k) for k in sticky_keys]
            if len(keys) != total:
                raise ValueError(
                    f"sticky_keys must supply one key per payload: "
                    f"got {len(keys)} keys for {total} payloads"
                )
        else:
            keys = list(range(total))
        results: List[Any] = [None] * total
        compute_total = 0.0
        transport_total = 0.0
        crashes = 0
        first_error: Optional[BaseException] = None

        if sticky:
            queues: List[deque] = [
                deque(j for j in range(total) if self.sticky_worker(keys[j]) == w)
                for w in range(self.size)
            ]
            shared: deque = deque()
        else:
            queues = []
            shared = deque(range(total))
        # worker slot -> (job index, unique job id, dispatch timestamp)
        inflight: Dict[int, Tuple[int, int, float]] = {}
        job_positions: Dict[int, int] = {}

        def next_job(worker_index: int) -> Optional[int]:
            queue = queues[worker_index] if sticky else shared
            return queue.popleft() if queue else None

        def dispatch(worker_index: int) -> None:
            job = next_job(worker_index)
            if job is None:
                return
            self._job_seq += 1
            job_id = self._job_seq
            job_positions[job_id] = job
            try:
                self._connections[worker_index].send((job_id, fn, payloads[job]))
            except (BrokenPipeError, OSError):
                # Worker died idle: replace it and dispatch to the
                # fresh process (the job itself never ran).
                self._respawn(worker_index)
                self._connections[worker_index].send((job_id, fn, payloads[job]))
            # The sticky-routing distribution: how many jobs each slot
            # actually executed this process lifetime.
            registry.counter("pool.jobs", worker=worker_index).inc()
            inflight[worker_index] = (job, job_id, time.perf_counter())

        def note_error(exc: BaseException) -> None:
            nonlocal first_error
            if first_error is None:
                first_error = exc

        def record_crash(worker_index: int) -> None:
            nonlocal crashes
            job, _job_id, _sent = inflight.pop(worker_index)
            exitcode = self._processes[worker_index].exitcode
            crashes += 1
            registry.counter("pool.crashes").inc()
            error = WorkerCrashedError(
                f"worker process {worker_index} (pid "
                f"{self._processes[worker_index].pid}) died while running job "
                f"{job} (exit code {exitcode})",
                job_index=job,
                exitcode=exitcode,
            )
            self._respawn(worker_index)
            results[job] = error
            note_error(error)
            dispatch(worker_index)

        for worker_index in range(self.size):
            dispatch(worker_index)

        while inflight:
            by_connection = {self._connections[w]: w for w in inflight}
            ready = multiprocessing.connection.wait(
                list(by_connection), timeout=_WAIT_TIMEOUT
            )
            if not ready:
                for worker_index in list(inflight):
                    if not self._processes[worker_index].is_alive():
                        record_crash(worker_index)
                continue
            for connection in ready:
                worker_index = by_connection[connection]
                if worker_index not in inflight:  # handled as a crash above
                    continue
                try:
                    job_id, value, error, compute_seconds = connection.recv()
                except (EOFError, OSError):
                    record_crash(worker_index)
                    continue
                entry = inflight.get(worker_index)
                if entry is None or entry[1] != job_id:
                    continue  # stale reply from an earlier incarnation
                job, _job_id, sent_at = inflight.pop(worker_index)
                latency = time.perf_counter() - sent_at
                compute_total += compute_seconds
                transport_total += max(0.0, latency - compute_seconds)
                if error is not None:
                    exc, remote_traceback = error
                    if remote_traceback:
                        try:
                            exc.add_note(
                                f"(remote traceback)\n{remote_traceback.rstrip()}"
                            )
                        except Exception:  # pragma: no cover - exotic exception
                            pass
                    results[job] = exc
                    note_error(exc)
                else:
                    results[job] = value
                dispatch(worker_index)

        if timings is not None:
            timings["compute_s"] = timings.get("compute_s", 0.0) + compute_total
            timings["transport_s"] = timings.get("transport_s", 0.0) + transport_total
            timings["crashes"] = timings.get("crashes", 0) + crashes
        if first_error is not None and not return_exceptions:
            raise first_error
        return results


# ----------------------------------------------------------------------
# The shared pools: one per (size, start method), created on demand,
# kept warm for the life of the process.
# ----------------------------------------------------------------------
_POOLS: Dict[Tuple[int, str], WorkerPool] = {}


def get_worker_pool(workers: int, start_method: Optional[str] = None) -> WorkerPool:
    """The process-wide persistent pool for this size/start method.

    Raises one of :data:`POOL_UNAVAILABLE_ERRORS` where multiprocessing
    cannot run; callers degrade to serial on those.

    Note the fork caveat: workers inherit the parent's modules as of
    pool creation.  Components registered *after* that (test plugins)
    still resolve in workers because payloads carry only names and
    unpickling imports defining modules — but modules mutated in-place
    post-fork will differ.  :func:`shutdown_worker_pools` forces fresh
    workers when that matters.
    """
    method = start_method if start_method is not None else default_start_method()
    key = (int(workers), method)
    pool = _POOLS.get(key)
    if pool is not None and pool.alive:
        return pool
    pool = WorkerPool(workers, start_method=method)
    _POOLS[key] = pool
    return pool


def shutdown_worker_pools() -> None:
    """Close every persistent pool (test teardown / process exit)."""
    while _POOLS:
        _key, pool = _POOLS.popitem()
        pool.close()


atexit.register(shutdown_worker_pools)
