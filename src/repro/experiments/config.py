"""Experiment configuration.

One dataclass describes a full two-stage run (stream learning + probe
evaluation); the benchmark harnesses derive per-figure/table variants
from :func:`default_config` and scale them with the ``REPRO_BENCH_SCALE``
environment knob (see DESIGN.md §5).

All paper hyper-parameters that survive the CPU scaling are kept:
Adam + weight decay 1e-4, NT-Xent τ=0.5 for CIFAR-family / 0.07-style
low temperatures exposed as a knob, lr ∝ sqrt(buffer) for the buffer
sweep, STC-controlled streams, and the 1% / 10% / 100% label protocol.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    # Imported lazily at runtime (repro.session.config_from_dict):
    # repro.fleet.coordinator imports this module, so a top-level
    # import of the fleet package here would cycle.
    from repro.fleet.spec import FleetConfig

__all__ = [
    "StreamExperimentConfig",
    "default_config",
    "bench_scale",
    "bench_seed",
    "scaled_config",
]


@dataclass(frozen=True)
class StreamExperimentConfig:
    """Everything needed to reproduce one stream-learning run."""

    # data (``scenario`` names a repro.registry stream scenario; the
    # stream shape — temporal/drift/cyclic-drift/bursty/imbalanced/
    # corrupted — is resolved through SCENARIOS at run time)
    dataset: str = "cifar10"
    image_size: Optional[int] = None  # None = registry default
    scenario: str = "temporal"
    stc: int = 64
    total_samples: int = 8192
    # buffer / stage-1 training
    buffer_size: int = 32
    temperature: float = 0.5
    lr: float = 1e-3
    weight_decay: float = 1e-4
    # model (``encoder`` names a repro.registry entry; the width/depth
    # knobs below apply to encoders whose factory accepts them)
    encoder: str = "resnet"
    encoder_widths: Tuple[int, ...] = (12, 24, 48)
    encoder_blocks: int = 1
    projection_dim: int = 32
    # augmentation (strong, stage-1; ``augment`` names a registry entry)
    augment: str = "simclr"
    augment_min_crop: float = 0.6
    augment_jitter: float = 0.2
    augment_grayscale_p: float = 0.2
    # stage-2 probe
    probe_train_per_class: int = 40
    probe_test_per_class: int = 20
    probe_epochs: int = 40
    probe_lr: float = 3e-3
    # execution (``backend`` names a repro.registry array backend;
    # None inherits the process default — REPRO_BACKEND env or "numpy")
    backend: Optional[str] = None
    # fleet simulation (``fleet`` describes the device roster + round
    # schedule, ``aggregator`` names a repro.registry model-aggregation
    # rule; both are None for plain single-device runs and, like the
    # backend/scenario selections, serialize into checkpoints and sweep
    # payloads)
    fleet: Optional[FleetConfig] = None
    aggregator: Optional[str] = None
    # serving (``serve`` names a repro.registry admission-control
    # policy for the scoring service — block/shed/degrade; None means
    # the experiment/CLI default, "block")
    serve: Optional[str] = None
    # observability (``obs`` gates hot-path metrics recording into
    # repro.obs for this run: True/False force it on/off in whatever
    # process executes the run — workers included, since the config
    # rides every sweep/fleet payload — and None defers to the process
    # default, the REPRO_METRICS env / CLI --metrics flag.  Telemetry
    # is observation only, so fingerprints normalize this field away:
    # obs on vs off is bitwise-identical science.)
    obs: Optional[bool] = None
    # reproducibility
    seed: int = 0

    def __post_init__(self) -> None:
        if self.buffer_size < 2:
            raise ValueError(f"buffer_size must be >= 2, got {self.buffer_size}")
        if self.total_samples < self.buffer_size:
            raise ValueError(
                f"total_samples ({self.total_samples}) smaller than one "
                f"segment ({self.buffer_size})"
            )
        if self.stc < 1:
            raise ValueError(f"stc must be >= 1, got {self.stc}")

    @property
    def iterations(self) -> int:
        """Number of replacement/training iterations the stream yields."""
        return -(-self.total_samples // self.buffer_size)  # ceil division

    def with_(self, **changes) -> "StreamExperimentConfig":
        """A modified copy (dataclasses.replace convenience)."""
        return replace(self, **changes)


def default_config(dataset: str = "cifar10", seed: int = 0) -> StreamExperimentConfig:
    """The calibrated default operating point (see DESIGN.md)."""
    return StreamExperimentConfig(dataset=dataset, seed=seed)


def bench_scale() -> float:
    """Global benchmark scale factor from ``REPRO_BENCH_SCALE`` (>= 0.1)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE must be a float, got {raw!r}") from exc
    if value < 0.1:
        raise ValueError(f"REPRO_BENCH_SCALE must be >= 0.1, got {value}")
    return value


def bench_seed() -> int:
    """Benchmark seed from ``REPRO_BENCH_SEED`` (default 0)."""
    raw = os.environ.get("REPRO_BENCH_SEED", "0")
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SEED must be an int, got {raw!r}") from exc


def scaled_config(
    config: StreamExperimentConfig, scale: Optional[float] = None
) -> StreamExperimentConfig:
    """Stretch the stream length (and probe budget, mildly) by ``scale``.

    ``scale=1`` is the CPU-minutes default; larger values approach the
    paper's regime (longer streams = more replacement iterations).
    """
    scale = bench_scale() if scale is None else scale
    if scale == 1.0:
        return config
    total = max(config.buffer_size, int(round(config.total_samples * scale)))
    probe_epochs = max(10, int(round(config.probe_epochs * min(scale, 2.0))))
    return config.with_(total_samples=total, probe_epochs=probe_epochs)
