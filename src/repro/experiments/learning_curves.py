"""Figs. 4-6 harness: learning curves on the six datasets.

The paper plots probe accuracy (100% labels, the "avoid label-ratio
influence" protocol) against the number of seen stream inputs for
Contrast Scoring vs. the two strongest baselines (Random, FIFO), on
CIFAR-10, ImageNet-100 (Fig. 4), ImageNet-20/50 (Fig. 5), and
SVHN / CIFAR-100 (Fig. 6), and reports the speedup at matched accuracy
(2.67× on CIFAR-10).

Reproduction target: Contrast Scoring dominates the whole curve, reaches
the random policy's final accuracy with a multiple fewer inputs, and
FIFO is the weakest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import StreamExperimentConfig, default_config
from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.runner import POLICY_LABELS, StreamRunResult
from repro.metrics.curves import LearningCurve, speedup_at_accuracy
from repro.registry import canonical_policy_names
from repro.utils.tables import format_table

__all__ = [
    "CURVE_POLICIES",
    "LearningCurveResult",
    "run_learning_curves",
    "format_learning_curves",
]

#: The paper compares the two most competitive baselines in Figs. 4-6.
CURVE_POLICIES = ("contrast-scoring", "random-replace", "fifo")


@dataclass
class LearningCurveResult:
    """Curves for all policies on one dataset plus derived statistics."""

    dataset: str
    config: StreamExperimentConfig
    runs: Dict[str, StreamRunResult] = field(default_factory=dict)

    @property
    def curves(self) -> Dict[str, LearningCurve]:
        return {name: run.curve for name, run in self.runs.items()}

    def final_accuracies(self) -> Dict[str, float]:
        return {name: run.final_accuracy for name, run in self.runs.items()}

    def speedup_over(self, baseline: str) -> Optional[float]:
        """Seen-input speedup of contrast scoring at the baseline's final
        accuracy — the paper's "2.67× faster" statistic."""
        if "contrast-scoring" not in self.runs or baseline not in self.runs:
            return None
        target = self.runs[baseline].final_accuracy
        return speedup_at_accuracy(
            self.runs["contrast-scoring"].curve, self.runs[baseline].curve, target
        )


def run_learning_curves(
    dataset: str,
    config: Optional[StreamExperimentConfig] = None,
    policies: Sequence[str] = CURVE_POLICIES,
    eval_points: int = 6,
    workers: int = 1,
) -> LearningCurveResult:
    """Run the Figs. 4-6 protocol for one dataset.

    ``workers > 1`` runs the per-policy curves in parallel via
    :func:`repro.experiments.parallel.run_sweep`.
    """
    config = config if config is not None else default_config(dataset)
    if config.dataset != dataset:
        config = config.with_(dataset=dataset)
    policies = canonical_policy_names(policies)
    result = LearningCurveResult(dataset=dataset, config=config)
    specs = [
        SweepSpec(
            config=config, policy=policy, eval_points=eval_points, label_fraction=1.0
        )
        for policy in policies
    ]
    for policy, run in zip(policies, run_sweep(specs, workers=workers)):
        result.runs[policy] = run
    return result


def format_learning_curves(result: LearningCurveResult) -> str:
    """Render curves as a table of (seen inputs → accuracy) series."""
    # union of checkpoints (each policy shares the same schedule)
    reference = next(iter(result.runs.values())).curve
    header = ["seen inputs"] + [
        POLICY_LABELS.get(name, name) for name in result.runs
    ]
    rows: List[List[str]] = []
    for i, seen in enumerate(reference.seen_inputs):
        row = [str(seen)]
        for run in result.runs.values():
            acc = run.curve.accuracies[i] if i < len(run.curve.accuracies) else None
            row.append("" if acc is None else f"{acc:.3f}")
        rows.append(row)
    table = format_table(header, rows)

    extras = []
    for baseline in result.runs:
        if baseline == "contrast-scoring":
            continue
        speedup = result.speedup_over(baseline)
        label = POLICY_LABELS.get(baseline, baseline)
        if speedup is None:
            reason = (
                "no contrast-scoring run"
                if "contrast-scoring" not in result.runs
                else "target accuracy not reached"
            )
            extras.append(f"speedup vs {label}: n/a ({reason})")
        else:
            extras.append(f"speedup vs {label}: {speedup:.2f}x")
    finals = ", ".join(
        f"{POLICY_LABELS.get(n, n)}={a:.3f}" for n, a in result.final_accuracies().items()
    )
    return "\n".join([table, f"final: {finals}"] + extras)
