"""Ablation harnesses beyond the paper's tables (DESIGN.md exp. A-C).

A. Score-gradient relation (paper §III-C made quantitative): the rank
   correlation between contrast score and NT-Xent gradient magnitude,
   measured on live projections during training.
B. Deterministic vs. randomized scoring views (the paper's "Contrast
   Score Design Principle" paragraph): score stability and downstream
   accuracy when the weak deterministic flip view is replaced by strong
   random augmentation.
C. STC sweep: how the margin between contrast scoring and random
   replacement grows with temporal correlation strength.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gradient_analysis import score_gradient_relation
from repro.core.scoring import ContrastScorer
from repro.data.augment import SimCLRAugment, horizontal_flip
from repro.experiments.config import StreamExperimentConfig, default_config
from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.runner import run_stream_experiment
from repro.registry import canonical_policy_names, create_policy
from repro.session import build_components
from repro.utils.tables import format_table

__all__ = [
    "GradientAblationResult",
    "run_gradient_ablation",
    "format_gradient_ablation",
    "ScoringViewResult",
    "run_scoring_view_ablation",
    "format_scoring_view_ablation",
    "StcSweepResult",
    "run_stc_sweep",
    "format_stc_sweep",
    "MomentumAblationResult",
    "run_momentum_ablation",
    "format_momentum_ablation",
]


# ----------------------------------------------------------------------
# A. score vs gradient magnitude
# ----------------------------------------------------------------------
@dataclass
class GradientAblationResult:
    """Score/gradient-norm correlation at several training stages."""

    checkpoints: List[int] = field(default_factory=list)
    correlations: List[float] = field(default_factory=list)
    low_score_grad: List[float] = field(default_factory=list)
    high_score_grad: List[float] = field(default_factory=list)


def run_gradient_ablation(
    config: Optional[StreamExperimentConfig] = None,
    probes: int = 4,
    batch: int = 48,
) -> GradientAblationResult:
    """Measure the §III-C relation on live projections along a run."""
    config = config if config is not None else default_config()
    comp = build_components(config)
    result = GradientAblationResult()
    rng = comp.rngs.get("gradient-ablation")
    augment = SimCLRAugment(
        min_crop_scale=config.augment_min_crop,
        jitter_strength=config.augment_jitter,
    )

    # Interleave short training phases with measurements.
    from repro.data.stream import TemporalStream
    from repro.core.framework import OnDeviceContrastiveLearner

    policy = create_policy(
        "contrast-scoring",
        scorer=comp.scorer,
        capacity=config.buffer_size,
        rng=comp.rngs.get("policy"),
    )
    learner = OnDeviceContrastiveLearner(
        comp.encoder,
        comp.projector,
        policy,
        config.buffer_size,
        comp.rngs.get("augment"),
        temperature=config.temperature,
        lr=config.lr,
        weight_decay=config.weight_decay,
        augment=augment,
    )
    stream = TemporalStream(comp.dataset, config.stc, comp.rngs.get("stream"))

    iters_per_phase = max(1, config.iterations // probes)

    def measure() -> None:
        labels = rng.integers(0, comp.dataset.num_classes, size=batch)
        images = comp.dataset.sample(labels, rng)
        z1 = comp.scorer.project(images)
        z2 = comp.scorer.project(horizontal_flip(images))
        relation = score_gradient_relation(z1, z2, config.temperature)
        order = np.argsort(relation.scores)
        k = max(1, batch // 4)
        result.checkpoints.append(learner.iteration)
        result.correlations.append(relation.spearman_correlation())
        result.low_score_grad.append(float(relation.grad_norms[order[:k]].mean()))
        result.high_score_grad.append(float(relation.grad_norms[order[-k:]].mean()))

    measure()
    for phase in range(probes):
        for segment in stream.segments(config.buffer_size, iters_per_phase * config.buffer_size):
            learner.process_segment(segment)
        measure()
    return result


def format_gradient_ablation(result: GradientAblationResult) -> str:
    header = [
        "iteration",
        "spearman(score, |grad|)",
        "mean |grad| low-score quartile",
        "mean |grad| high-score quartile",
    ]
    rows = [
        [str(it), f"{c:.3f}", f"{lo:.4f}", f"{hi:.4f}"]
        for it, c, lo, hi in zip(
            result.checkpoints,
            result.correlations,
            result.low_score_grad,
            result.high_score_grad,
        )
    ]
    return format_table(header, rows)


# ----------------------------------------------------------------------
# B. deterministic vs randomized scoring views
# ----------------------------------------------------------------------
@dataclass
class ScoringViewResult:
    """Stability and accuracy of deterministic vs. random scoring views."""

    deterministic_score_std: float
    randomized_score_std: float
    deterministic_accuracy: float
    randomized_accuracy: float


def run_scoring_view_ablation(
    config: Optional[StreamExperimentConfig] = None,
    repeats: int = 5,
) -> ScoringViewResult:
    """Quantify the paper's design-principle argument.

    Score stability: std of repeated scorings of the same batch
    (deterministic flip => 0).  Accuracy: a full contrast-scoring run
    where the scoring view is the strong random augmentation instead of
    the flip.
    """
    config = config if config is not None else default_config()
    comp = build_components(config)
    rng = comp.rngs.get("view-ablation")
    labels = rng.integers(0, comp.dataset.num_classes, size=config.buffer_size)
    images = comp.dataset.sample(labels, rng)
    augment = SimCLRAugment(
        min_crop_scale=config.augment_min_crop,
        jitter_strength=config.augment_jitter,
    )

    det_scorer = ContrastScorer(comp.encoder, comp.projector)
    det_scores = np.stack([det_scorer.score(images) for _ in range(repeats)])

    rand_scorer = ContrastScorer(
        comp.encoder,
        comp.projector,
        view_fn=lambda batch: augment.augment_once(batch, rng),
    )
    rand_scores = np.stack([rand_scorer.score(images) for _ in range(repeats)])

    det_run = run_stream_experiment(config, "contrast-scoring", eval_points=1)

    # Randomized-view run: rebuild fresh components, swap the view.
    comp2 = build_components(config)
    view_rng = comp2.rngs.get("view-randomizer")
    comp2.scorer.view_fn = lambda batch: augment.augment_once(batch, view_rng)
    rand_run = run_stream_experiment(
        config, "contrast-scoring", eval_points=1, components=comp2
    )

    return ScoringViewResult(
        deterministic_score_std=float(det_scores.std(axis=0).mean()),
        randomized_score_std=float(rand_scores.std(axis=0).mean()),
        deterministic_accuracy=det_run.final_accuracy,
        randomized_accuracy=rand_run.final_accuracy,
    )


def format_scoring_view_ablation(result: ScoringViewResult) -> str:
    header = ["scoring view", "score std across runs", "final accuracy"]
    rows = [
        ["deterministic flip (paper)", f"{result.deterministic_score_std:.5f}",
         f"{result.deterministic_accuracy:.3f}"],
        ["randomized strong augment", f"{result.randomized_score_std:.5f}",
         f"{result.randomized_accuracy:.3f}"],
    ]
    return format_table(header, rows)


# ----------------------------------------------------------------------
# C. STC sweep
# ----------------------------------------------------------------------
@dataclass
class StcSweepResult:
    """Contrast-scoring and random accuracy across STC values."""

    stc_values: Tuple[int, ...]
    accuracy: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def margin(self, stc: int) -> float:
        return (
            self.accuracy[stc]["contrast-scoring"]
            - self.accuracy[stc]["random-replace"]
        )


def run_stc_sweep(
    config: Optional[StreamExperimentConfig] = None,
    stc_values: Sequence[int] = (1, 8, 64, 512),
    policies: Sequence[str] = ("contrast-scoring", "random-replace"),
    workers: int = 1,
) -> StcSweepResult:
    """Vary the temporal correlation strength of the stream.

    ``workers > 1`` runs the (STC, policy) grid in parallel via
    :func:`repro.experiments.parallel.run_sweep`.
    """
    base = config if config is not None else default_config()
    policies = canonical_policy_names(policies)
    result = StcSweepResult(stc_values=tuple(stc_values))
    specs = [
        SweepSpec(config=base.with_(stc=stc), policy=policy, eval_points=1)
        for stc in stc_values
        for policy in policies
    ]
    runs = iter(run_sweep(specs, workers=workers))
    for stc in stc_values:
        result.accuracy[stc] = {policy: next(runs).final_accuracy for policy in policies}
    return result


def format_stc_sweep(result: StcSweepResult) -> str:
    header = ["STC"] + list(next(iter(result.accuracy.values())).keys()) + ["CS margin"]
    rows = []
    for stc in result.stc_values:
        by_policy = result.accuracy[stc]
        rows.append(
            [str(stc)]
            + [f"{acc:.3f}" for acc in by_policy.values()]
            + [f"{result.margin(stc):+.3f}" if "random-replace" in by_policy else ""]
        )
    return format_table(header, rows)


# ----------------------------------------------------------------------
# D. momentum scores vs lazy scoring
# ----------------------------------------------------------------------
@dataclass
class MomentumAblationResult:
    """Accuracy of the momentum-score variants (Table I conjecture).

    The paper conjectures lazy scoring's small accuracy gain comes from
    stale scores acting like a momentum (EMA) score.  This ablation
    tests the conjecture directly: explicit EMA smoothing of fresh
    scores, with no laziness, at several momentum coefficients, next to
    a lazy run.
    """

    settings: List[str] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    rescoring: List[float] = field(default_factory=list)


def run_momentum_ablation(
    config: Optional[StreamExperimentConfig] = None,
    momenta: Sequence[float] = (0.0, 0.5, 0.9),
    lazy_interval: int = 20,
) -> MomentumAblationResult:
    """Compare explicit EMA scores against lazy scoring's implicit ones."""
    config = config if config is not None else default_config()
    result = MomentumAblationResult()
    for momentum in momenta:
        run = run_stream_experiment(
            config, "contrast-scoring", eval_points=1, score_momentum=momentum
        )
        label = "eager (paper)" if momentum == 0.0 else f"EMA momentum={momentum}"
        result.settings.append(label)
        result.accuracies.append(run.final_accuracy)
        result.rescoring.append(run.rescoring_fraction or 0.0)
    lazy_run = run_stream_experiment(
        config, "contrast-scoring", eval_points=1, lazy_interval=lazy_interval
    )
    result.settings.append(f"lazy T={lazy_interval} (implicit momentum)")
    result.accuracies.append(lazy_run.final_accuracy)
    result.rescoring.append(lazy_run.rescoring_fraction or 0.0)
    return result


def format_momentum_ablation(result: MomentumAblationResult) -> str:
    header = ["score update rule", "accuracy", "re-scoring pct"]
    rows = [
        [name, f"{acc:.3f}", f"{frac:.1%}"]
        for name, acc, frac in zip(
            result.settings, result.accuracies, result.rescoring
        )
    ]
    return format_table(header, rows)
