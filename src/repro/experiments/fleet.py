"""The ``fleet`` experiment: multi-device rounds vs. a single device.

Runs a :class:`~repro.fleet.coordinator.FleetCoordinator` over the
configured device roster and reports two things:

* the **per-round table** — one row per round with each device's local
  kNN-probe accuracy and buffer class diversity, plus the aggregated
  global model's accuracy;
* the **fleet-vs-single-device gap** — the final global accuracy minus
  the final accuracy of one plain single-device Session run on the
  first device's resolved plan (same policy, scenario, seed, stream
  length, and lazy interval).  A positive gap means coordination beat
  going it alone on an equal-stream-length budget.

``workers > 1`` fans each round's device jobs over the persistent
:class:`~repro.experiments.pool.WorkerPool` through the shared
:func:`repro.experiments.parallel.run_jobs` engine, shipping session
state through a registered wire format (``--wire-format``; ``delta``
by default).  Every deterministic field of the result is
bitwise-identical to the serial run under every wire format.  The CLI
exposes this as ``repro fleet --devices N --rounds R --aggregator
NAME --wire-format NAME``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

from repro.experiments.config import StreamExperimentConfig, default_config
from repro.experiments.parallel import result_fingerprint
from repro.experiments.runner import StreamRunResult, run_stream_experiment
from repro.fleet.faults import FaultPlan
from repro.fleet.spec import DeviceSpec, FleetConfig
from repro.utils.tables import format_table

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.fleet.coordinator imports
    # repro.experiments.config, which initializes this package, so a
    # top-level coordinator import here would cycle.
    from repro.fleet.coordinator import FleetRunResult

__all__ = [
    "FleetExperimentResult",
    "run_fleet",
    "format_fleet",
]


@dataclass
class FleetExperimentResult:
    """The fleet run, its single-device baseline, and the gap."""

    fleet: FleetRunResult
    single: StreamRunResult
    fleet_gap: float

    def fingerprint(self) -> Dict[str, Any]:
        """Deterministic payload (wall-clock timing excluded): the
        serial and ``workers > 1`` runs must produce equal values."""
        return {
            "fleet": self.fleet.fingerprint(),
            "single": result_fingerprint(self.single),
            "fleet_gap": self.fleet_gap,
        }


def run_fleet(
    config: Optional[StreamExperimentConfig] = None,
    devices: int | Sequence[DeviceSpec] = 3,
    rounds: int = 2,
    aggregator: str = "fedavg",
    policy: Optional[str] = None,
    scenario: Optional[str] = None,
    eval_points: int = 1,
    workers: int = 1,
    wire_format: Optional[str] = None,
    participants: Optional[int] = None,
    sampler: Optional[str] = None,
    round_deadline_s: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    regions: Optional[Sequence[Sequence[int]]] = None,
) -> FleetExperimentResult:
    """Run the fleet experiment plus its single-device baseline.

    ``devices`` is a device count (uniform roster, per-device seeds
    fanning out from ``config.seed``) or an explicit
    :class:`DeviceSpec` sequence.  ``policy``/``scenario`` apply to the
    uniform roster *and* the baseline; an explicit roster keeps its own
    per-device selections (the baseline then uses the first device's
    policy).  When ``config`` already carries ``fleet``/``aggregator``
    fields they win over the ``devices``/``rounds``/``aggregator``
    arguments.  ``wire_format`` selects the transport codec for
    ``workers > 1`` (any :data:`repro.registry.WIRE_FORMATS` name;
    ``None`` = the ``REPRO_WIRE_FORMAT`` env var, else ``delta``).

    The population knobs mirror :class:`FleetConfig`: ``participants``
    trains only K sampled devices per round (``sampler`` names the
    :data:`repro.registry.CLIENT_SAMPLERS` rule, default ``uniform``),
    ``round_deadline_s`` + ``fault_plan`` drive the straggler/dropout
    chaos harness, and ``regions`` groups devices for the
    ``hierarchical`` aggregator.
    """
    from repro.fleet.coordinator import FleetCoordinator

    base = config if config is not None else default_config()
    if base.fleet is not None:
        coordinator = FleetCoordinator(
            base, eval_points=eval_points, workers=workers, wire_format=wire_format
        )
    else:
        if isinstance(devices, int):
            roster: Sequence[DeviceSpec] = tuple(
                DeviceSpec(
                    policy=policy if policy is not None else "contrast-scoring",
                    scenario=scenario,
                )
                for _ in range(devices)
            )
        else:
            roster = tuple(devices)
        fleet_config = FleetConfig(
            devices=tuple(roster),
            rounds=rounds,
            participants=participants,
            sampler=sampler,
            regions=None
            if regions is None
            else tuple(tuple(int(i) for i in region) for region in regions),
            round_deadline_s=round_deadline_s,
            fault_plan=fault_plan,
        )
        coordinator = FleetCoordinator(
            base.with_(fleet=fleet_config, aggregator=aggregator),
            eval_points=eval_points,
            workers=workers,
            wire_format=wire_format,
        )
    fleet_result = coordinator.run()

    # Single-device reference: one plain Session on the first device's
    # *resolved* plan — same policy, scenario, seed, stream length, and
    # lazy interval — so the gap is an equal-budget comparison even
    # when the roster overrides those fields.
    plan = coordinator.plans[0]
    single = run_stream_experiment(
        plan.config,
        plan.policy,
        eval_points=eval_points,
        lazy_interval=plan.lazy_interval,
    )
    gap = fleet_result.final_global_knn_accuracy - float(
        single.info["final_knn_accuracy"]
    )
    return FleetExperimentResult(fleet=fleet_result, single=single, fleet_gap=gap)


def format_fleet(result: FleetExperimentResult) -> str:
    """Render the per-round accuracy/diversity table plus the gap.

    Small synchronous fleets get one column per device; population
    runs (client sampling / fault plans) and rosters past 8 devices
    get a compact per-round summary instead — a 1000-device table
    with a column per device would be unreadable.
    """
    fleet = result.fleet
    population = any(stats.participants is not None for stats in fleet.rounds)
    if population or len(fleet.device_names) > 8:
        header = ["round", "trained", "dropped", "late", "mean acc", "global acc"]
        rows = []
        for stats in fleet.rounds:
            suffix = "" if stats.synchronized else " (no sync)"
            rows.append(
                [
                    str(stats.round_index),
                    str(len(stats.devices)),
                    str(len(stats.dropped or ())),
                    str(len(stats.late or ())),
                    f"{stats.mean_device_accuracy:.3f}",
                    f"{stats.global_knn_accuracy:.3f}{suffix}",
                ]
            )
    else:
        header = ["round"] + [
            f"{name} (acc/div)" for name in fleet.device_names
        ] + ["global acc"]
        rows = []
        for stats in fleet.rounds:
            row = [str(stats.round_index)]
            for device in stats.devices:
                row.append(f"{device.knn_accuracy:.3f}/{device.buffer_diversity:.1f}")
            suffix = "" if stats.synchronized else " (no sync)"
            row.append(f"{stats.global_knn_accuracy:.3f}{suffix}")
            rows.append(row)
    single_knn = float(result.single.info["final_knn_accuracy"])
    summary = (
        f"aggregator={fleet.aggregator} devices={len(fleet.device_names)} "
        f"rounds={len(fleet.rounds)}\n"
        f"fleet-vs-single-device gap: {result.fleet_gap:+.3f} "
        f"(fleet global {fleet.final_global_knn_accuracy:.3f} vs "
        f"single {single_knn:.3f})"
    )
    lines = [format_table(header, rows), summary]
    if fleet.timings:
        totals = {
            key: sum(entry.get(key, 0.0) for entry in fleet.timings)
            for key in ("serialize_s", "transport_s", "compute_s", "merge_s", "wall_s")
        }
        workers = max(entry.get("workers", 1) for entry in fleet.timings)
        lines.append(
            f"transport: wire={fleet.wire_format or 'raw'} workers={workers} "
            f"serialize {totals['serialize_s']:.3f}s "
            f"transport {totals['transport_s']:.3f}s "
            f"compute {totals['compute_s']:.3f}s "
            f"merge {totals['merge_s']:.3f}s "
            f"wall {totals['wall_s']:.3f}s"
        )
    return "\n".join(lines)
