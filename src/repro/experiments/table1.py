"""Table I harness: the impacts of lazy scoring.

Sweeps the lazy-scoring interval T over the paper's grid
{disabled, 4, 20, 50, 100, 200} on the cifar10-like stream and reports,
per interval: final probe accuracy, average re-scoring percentage of
buffer data per iteration, and relative batch time (scoring + training
over training alone).

Paper reference row shapes: re-scoring % falls like ~1/T (100 → 21.78 →
4.31 → 1.71 → 0.89 → 0.44), relative batch time falls from 1.478 toward
1.17, and accuracy is flat-to-slightly-up for moderate T with a drop at
T=200.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import StreamExperimentConfig, default_config
from repro.experiments.runner import StreamRunResult, run_stream_experiment
from repro.utils.tables import format_table

__all__ = ["LAZY_INTERVALS", "Table1Result", "run_table1", "format_table1"]

#: The paper's interval grid; None = lazy scoring disabled.
LAZY_INTERVALS = (None, 4, 20, 50, 100, 200)


@dataclass
class Table1Result:
    """Per-interval outcomes of the lazy-scoring sweep."""

    config: StreamExperimentConfig
    runs: Dict[Optional[int], StreamRunResult] = field(default_factory=dict)

    def accuracy_delta(self, interval: Optional[int]) -> float:
        """Accuracy change relative to the disabled row (paper's (+x.xx))."""
        return (
            self.runs[interval].final_accuracy - self.runs[None].final_accuracy
        )


def run_table1(
    config: Optional[StreamExperimentConfig] = None,
    intervals: Sequence[Optional[int]] = LAZY_INTERVALS,
) -> Table1Result:
    """Run the full Table I sweep (contrast scoring at each interval)."""
    config = config if config is not None else default_config()
    result = Table1Result(config=config)
    for interval in intervals:
        result.runs[interval] = run_stream_experiment(
            config,
            "contrast-scoring",
            eval_points=1,
            label_fraction=1.0,
            lazy_interval=interval,
        )
    return result


def format_table1(result: Table1Result) -> str:
    """Render the Table I rows."""
    header = [
        "lazy interval",
        "accuracy",
        "acc delta",
        "re-scoring pct",
        "relative batch time",
    ]
    rows: List[List[str]] = []
    for interval, run in result.runs.items():
        label = "disabled" if interval is None else str(interval)
        rescoring = (
            "n/a" if run.rescoring_fraction is None else f"{run.rescoring_fraction:.2%}"
        )
        rows.append(
            [
                label,
                f"{run.final_accuracy:.3f}",
                f"{result.accuracy_delta(interval):+.3f}",
                rescoring,
                f"{run.relative_batch_time:.3f}",
            ]
        )
    return format_table(header, rows)
