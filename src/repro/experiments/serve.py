"""The ``serve`` experiment: the scoring service under a device stream.

Exercises the whole serve engine (:mod:`repro.serve`) end to end and
reports what production cares about:

1. **cold pass** — ``requests`` synthetic frames from ``devices``
   round-robin device ids stream through a micro-batching
   :class:`~repro.serve.ScoringServer`; halfway through, the trained
   session publishes a *new model version* (the fleet-broadcast path)
   and ``device-0`` is pinned to the old one, so the second half mixes
   versions inside single micro-batches;
2. **warm + repeat passes** — the same stream twice more: the repeat
   pass must be answered entirely from the embedding cache, bitwise
   equal to the warm pass (``warm_identical``);
3. **replay** — the cold pass replays against a *fresh* identically
   configured server (fresh cache, fresh modules) with each request
   pinned to the version it originally resolved to: decisions must be
   bitwise identical (``replay_identical``) — the determinism contract
   the perf suite's ``--check`` enforces;
4. optionally (``transport="tcp"``) — the warm stream is driven again
   through the JSON-lines TCP loopback, one pipelined connection per
   device, and must reproduce the warm scores exactly
   (``tcp_identical``).

The CLI exposes this as ``repro serve --serve-policy NAME --requests N
[--port P]``; admission behavior under overload is a registered policy
(``--queue-depth 1 --serve-policy shed`` makes shedding visible).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.experiments.config import StreamExperimentConfig, default_config
from repro.registry import SERVE_POLICIES
from repro.serve import (
    Decision,
    EmbeddingCache,
    ModelRegistry,
    ScoringServer,
    TcpClient,
    serve_tcp,
)
from repro.session import Session, build_components
from repro.utils.tables import format_table

__all__ = [
    "ServeExperimentResult",
    "run_serve",
    "format_serve",
]


@dataclass
class ServeExperimentResult:
    """The serve experiment's decisions, invariants, and timings."""

    policy: str
    transport: str
    devices: int
    requests: int
    versions: List[int]
    pins: Dict[str, int]
    cold: List[Decision]
    warm: List[Decision]
    repeat: List[Decision]
    replay_identical: bool
    warm_identical: bool
    tcp_identical: Optional[bool]  # None unless transport == "tcp"
    server_stats: Dict[str, Any]
    # wall-clock (excluded from the fingerprint)
    cold_seconds: float = field(default=0.0)
    repeat_seconds: float = field(default=0.0)

    @property
    def cold_rps(self) -> float:
        return self.requests / self.cold_seconds if self.cold_seconds else 0.0

    @property
    def repeat_rps(self) -> float:
        return self.requests / self.repeat_seconds if self.repeat_seconds else 0.0

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for decision in self.cold + self.warm + self.repeat:
            counts[decision.status] = counts.get(decision.status, 0) + 1
        return counts

    def fingerprint(self) -> Dict[str, Any]:
        """Deterministic payload (timings and latencies excluded)."""
        return {
            "policy": self.policy,
            "devices": self.devices,
            "requests": self.requests,
            "versions": list(self.versions),
            "pins": dict(self.pins),
            "cold": [d.fingerprint() for d in self.cold],
            "warm": [d.fingerprint() for d in self.warm],
            "repeat": [d.fingerprint() for d in self.repeat],
            "replay_identical": self.replay_identical,
            "warm_identical": self.warm_identical,
            "status_counts": self.status_counts(),
        }


async def _drive_inproc(
    server: ScoringServer,
    samples: np.ndarray,
    device_ids: List[str],
    versions: Optional[List[int]] = None,
    deadline_ms: Optional[float] = None,
) -> List[Decision]:
    """Submit one stream concurrently (so the server micro-batches it)."""
    return list(
        await asyncio.gather(
            *(
                server.submit(
                    samples[i],
                    device_id=device_ids[i],
                    model_version=None if versions is None else versions[i],
                    deadline_ms=deadline_ms,
                )
                for i in range(len(device_ids))
            )
        )
    )


async def _drive_tcp(
    server: ScoringServer,
    samples: np.ndarray,
    device_ids: List[str],
    port: int = 0,
) -> List[Decision]:
    """Drive the stream over TCP loopback, one pipelined connection per
    device, and reassemble decisions into stream order."""
    tcp = await serve_tcp(server, port=port)
    host, port = tcp.sockets[0].getsockname()[:2]
    by_device: Dict[str, List[int]] = {}
    for index, device_id in enumerate(device_ids):
        by_device.setdefault(device_id, []).append(index)
    decisions: List[Optional[Decision]] = [None] * len(device_ids)

    async def one_device(device_id: str, rows: List[int]) -> None:
        client = await TcpClient.connect(host, port)
        try:
            answers = await client.score_stream(
                [samples[row] for row in rows], device_id=device_id
            )
        finally:
            await client.close()
        for row, answer in zip(rows, answers):
            decisions[row] = answer

    try:
        await asyncio.gather(
            *(one_device(device_id, rows) for device_id, rows in by_device.items())
        )
    finally:
        tcp.close()
        await tcp.wait_closed()
    assert all(d is not None for d in decisions)
    return decisions  # type: ignore[return-value]


def run_serve(
    config: Optional[StreamExperimentConfig] = None,
    requests: int = 64,
    devices: int = 3,
    policy: Optional[str] = None,
    max_batch: int = 16,
    max_wait_ms: float = 2.0,
    queue_depth: int = 256,
    cache_capacity: int = 4096,
    deadline_ms: Optional[float] = None,
    train_iterations: int = 8,
    transport: str = "inproc",
    port: Optional[int] = None,
) -> ServeExperimentResult:
    """Run the serve experiment (see the module docstring for the plan).

    ``policy`` falls back to ``config.serve``, then ``"block"``.
    ``train_iterations`` is split across the two model publishes (the
    warmed-up model before serving, the mid-stream bump).  ``transport``
    is ``"inproc"`` or ``"tcp"`` (adds the TCP echo pass); passing
    ``port`` implies ``"tcp"`` and binds the loopback listener there
    (default: an ephemeral port).
    """
    if requests < 4:
        raise ValueError(f"requests must be >= 4, got {requests}")
    if devices < 1:
        raise ValueError(f"devices must be >= 1, got {devices}")
    if port is not None:
        transport = "tcp"
    if transport not in ("inproc", "tcp"):
        raise ValueError(f"transport must be 'inproc' or 'tcp', got {transport!r}")
    base = config if config is not None else default_config()
    policy_name = SERVE_POLICIES.get(
        policy if policy is not None else (base.serve or "block")
    ).name

    # Two model versions from one training session: a warmup publish
    # and a mid-stream bump (the fleet-broadcast path uses
    # ModelRegistry.attach instead; the contract is identical).
    session = Session(base)
    session.run(stop_after=max(1, train_iterations // 2))
    models = ModelRegistry()
    v1 = models.publish_session(session, source="warmup")

    comp = build_components(base)  # dedicated serving modules
    traffic_rng = np.random.default_rng(base.seed + 0x5E4E)
    labels = traffic_rng.integers(0, comp.dataset.num_classes, size=requests)
    samples = comp.dataset.sample(labels, traffic_rng)
    device_ids = [f"device-{i % devices}" for i in range(requests)]
    half = requests // 2

    async def _run() -> ServeExperimentResult:
        cache = EmbeddingCache(cache_capacity)
        server = ScoringServer(
            comp.scorer,
            models,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            queue_depth=queue_depth,
            policy=policy_name,
            cache=cache,
        )
        async with server:
            # -- cold pass with a mid-stream version bump -------------
            started = time.perf_counter()
            cold = await _drive_inproc(
                server, samples[:half], device_ids[:half], deadline_ms=deadline_ms
            )
            session.run(stop_after=max(1, train_iterations - train_iterations // 2))
            v2 = models.publish_session(session, source="midstream")
            models.pin("device-0", v1)  # canary: keep one device on v1
            cold += await _drive_inproc(
                server, samples[half:], device_ids[half:], deadline_ms=deadline_ms
            )
            cold_seconds = time.perf_counter() - started

            # -- warm + repeat passes ---------------------------------
            warm = await _drive_inproc(server, samples, device_ids)
            started = time.perf_counter()
            repeat = await _drive_inproc(server, samples, device_ids)
            repeat_seconds = time.perf_counter() - started
            warm_identical = all(
                r.cache_hit
                and r.score == w.score
                and r.selected == w.selected
                and r.model_version == w.model_version
                for w, r in zip(warm, repeat)
                if w.status == "ok" and r.status == "ok"
            )

            # -- TCP echo pass (optional) -----------------------------
            tcp_identical: Optional[bool] = None
            if transport == "tcp":
                echoed = await _drive_tcp(
                    server, samples, device_ids, port=port or 0
                )
                tcp_identical = all(
                    e.score == r.score
                    and e.selected == r.selected
                    and e.model_version == r.model_version
                    for e, r in zip(echoed, repeat)
                    if e.status == "ok" and r.status == "ok"
                )
            stats = server.stats()

        # -- replay: fresh server, identical stream + versions --------
        fresh = build_components(base)
        replay_server = ScoringServer(
            fresh.scorer,
            models,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            queue_depth=queue_depth,
            policy=policy_name,
            cache=EmbeddingCache(cache_capacity),
        )
        versions_used = [d.model_version for d in cold]
        async with replay_server:
            replay = await _drive_inproc(
                replay_server,
                samples[:half],
                device_ids[:half],
                versions=versions_used[:half],
                deadline_ms=deadline_ms,
            )
            replay += await _drive_inproc(
                replay_server,
                samples[half:],
                device_ids[half:],
                versions=versions_used[half:],
                deadline_ms=deadline_ms,
            )
        replay_identical = [d.fingerprint() for d in cold] == [
            d.fingerprint() for d in replay
        ]

        return ServeExperimentResult(
            policy=policy_name,
            transport=transport,
            devices=devices,
            requests=requests,
            versions=[v1, v2],
            pins=models.pins(),
            cold=cold,
            warm=warm,
            repeat=repeat,
            replay_identical=replay_identical,
            warm_identical=warm_identical,
            tcp_identical=tcp_identical,
            server_stats=stats,
            cold_seconds=cold_seconds,
            repeat_seconds=repeat_seconds,
        )

    return asyncio.run(_run())


def format_serve(result: ServeExperimentResult) -> str:
    """Render the per-pass table plus the invariant summary."""
    header = ["pass", "ok", "cache hits", "other", "samples/s"]
    rows = []
    for name, decisions, seconds in (
        ("cold", result.cold, result.cold_seconds),
        ("warm", result.warm, None),
        ("repeat", result.repeat, result.repeat_seconds),
    ):
        ok = sum(1 for d in decisions if d.status == "ok")
        hits = sum(1 for d in decisions if d.cache_hit)
        other = len(decisions) - ok
        rate = f"{len(decisions) / seconds:.0f}" if seconds else "-"
        rows.append([name, str(ok), str(hits), str(other), rate])
    cache = result.server_stats.get("cache", {})
    checks = [
        f"replay bitwise-identical: {result.replay_identical}",
        f"warm repeat bitwise-identical: {result.warm_identical}",
    ]
    if result.tcp_identical is not None:
        checks.append(f"tcp echo identical: {result.tcp_identical}")
    summary = (
        f"policy={result.policy} transport={result.transport} "
        f"devices={result.devices} requests={result.requests} "
        f"versions={result.versions} pins={result.pins}\n"
        f"mean batch {result.server_stats.get('mean_batch', 0.0):.2f}, "
        f"forwarded {result.server_stats.get('forwarded', 0)}, "
        f"cache hit rate {cache.get('hit_rate', 0.0):.2f}, "
        f"invalidations {cache.get('invalidations', 0)}\n" + "; ".join(checks)
    )
    return "\n".join([format_table(header, rows), summary])
