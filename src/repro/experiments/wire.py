"""Pluggable array wire formats: how model state crosses processes.

Every fan-out in the system — fleet device rounds, and any caller of
:func:`repro.experiments.parallel.run_jobs` that ships ndarrays — moves
``{name: ndarray}`` dicts between processes.  This module makes that
transport a registry (:data:`repro.registry.WIRE_FORMATS`, same alias +
"did you mean" semantics as BACKENDS/SCENARIOS) of bitwise-lossless
codecs:

``json-b64``
    The reference codec: base64 of the raw bytes plus dtype + shape,
    JSON-compatible end to end.  Slowest (base64 inflates bytes by 4/3
    and copies twice), but fully self-contained — the archival format,
    and the correctness oracle the other formats are tested against.
``shm``
    Zero-(re)copy transport through ``multiprocessing.shared_memory``:
    all arrays of a payload are packed into **one** named segment and
    only a small JSON manifest (name, dtype, shape, byte offset)
    crosses the pipe.  Lifecycle is deterministic: the sender creates
    the segment, exactly one receiver attaches, copies out, and
    unlinks; the sender's :meth:`WireFormat.release` is a best-effort
    backstop that unlinks any segment the receiver never consumed
    (worker crash), so segments cannot leak.
``delta``
    Content-hash deltas for repeated sends over a named ``channel``
    (fleet broadcasts): only arrays whose blake2b content hash changed
    since the previous send on that channel are shipped (through an
    inner ``shm`` or ``json-b64`` codec); the receiver merges them over
    its cached base and verifies every reused array against the
    sender's hash, so a stale cache can never silently corrupt a round.
``delta-q8``
    ``delta`` with changed float arrays int8-quantized (per-array
    scale + integer zero point).  **Lossy**: per-element error is at
    most ``(max(x, 0) - min(x, 0)) / 255``; exact zeros stay exactly
    zero; integer/bool/small arrays and every full (first) send stay
    bitwise.  ~4x smaller changed-array traffic.
``delta-topk``
    ``delta`` shipping only the top-k (by |change|) elements of each
    changed float array as sparse index/value pairs.  **Lossy**:
    shipped elements are exact, every other element keeps the
    receiver's previous value, so its deviation is bounded by the
    smallest shipped |change| of that send.

The lossless formats are exact: ``decode(encode(arrays))`` is
bitwise-identical to the input for every dtype/shape, including
float64, 0-d, and empty arrays (the round-trip property tests in
``tests/integration/test_wire_formats.py`` enforce this across the
whole registry).  The serial==parallel identity invariant holds under
*every* format — lossy codecs quantize identically wherever they run —
while the fleet-of-1 == plain-Session identity additionally requires a
lossless broadcast leg, so it is asserted for
:func:`lossless_wire_format_names` only (registrations carry a
``lossless`` metadata flag; see docs/FLEET.md's tolerance table).

Selection: pass ``wire_format=`` to :class:`FleetCoordinator` /
``run_fleet`` (or ``--wire-format`` on the CLI), or set the
``REPRO_WIRE_FORMAT`` environment variable as the process default.
Unset, the coordinator picks ``delta`` for cross-process rounds.
"""

from __future__ import annotations

import base64
import hashlib
import math
import os
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.registry import WIRE_FORMATS, register_wire_format

__all__ = [
    "WIRE_FORMATS",
    "register_wire_format",
    "WireFormat",
    "WireProtocolError",
    "JsonB64Format",
    "ShmFormat",
    "DeltaFormat",
    "DeltaQ8Format",
    "DeltaTopKFormat",
    "array_hash",
    "lossless_wire_format_names",
    "create_wire_format",
    "get_wire_format",
    "resolve_wire_format",
    "default_wire_format",
    "decode_state_payload",
    "shm_available",
    "outstanding_shm_segments",
    "reset_wire_caches",
    "WIRE_FORMAT_ENV",
]

#: Environment variable naming the process-default wire format (the
#: CLI's ``--wire-format`` sets it; CI's wire matrix exports it).
WIRE_FORMAT_ENV = "REPRO_WIRE_FORMAT"

#: Array offsets inside a shared-memory segment are rounded up to this
#: (cache-line) alignment so decoded views are never split-line.
_SHM_ALIGN = 64


class WireProtocolError(RuntimeError):
    """A wire payload could not be decoded (missing delta base, hash
    mismatch, unknown segment): the transport-level named error."""


class WireFormat:
    """Codec for ``{name: ndarray}`` dicts crossing a process boundary.

    Implementations must be bitwise-lossless and keyword-constructible
    (registry factories are invoked with keywords only).  ``channel``
    identifies a long-lived point-to-point stream (one fleet device);
    stateless codecs ignore it, ``delta`` keys its caches by it.
    """

    #: Canonical registered name, stamped into encoded payloads so the
    #: receiver can dispatch without out-of-band agreement.
    name: str = "base"

    #: Whether ``decode(encode(x))`` is bitwise ``x`` on *every* send.
    #: Lossy codecs (``delta-q8``/``delta-topk``) set this False and
    #: document their error bound; identity tests that require an exact
    #: broadcast leg enumerate :func:`lossless_wire_format_names`.
    lossless: bool = True

    @property
    def response_format(self) -> str:
        """The format the *reply* direction should use.  Deltas only pay
        off on repeated sends of mostly-unchanged state (broadcasts), so
        :class:`DeltaFormat` answers with its inner codec; stateless
        codecs answer with themselves."""
        return self.name

    def encode(
        self, arrays: Dict[str, np.ndarray], *, channel: Optional[str] = None
    ) -> Dict[str, Any]:
        """Encode an array dict into a picklable/JSON-ish payload."""
        raise NotImplementedError

    def decode(
        self, payload: Dict[str, Any], *, channel: Optional[str] = None
    ) -> Dict[str, np.ndarray]:
        """Exact inverse of :meth:`encode`; the returned arrays are
        owned by the caller (never views into shared state)."""
        raise NotImplementedError

    def release(self, payload: Dict[str, Any]) -> None:
        """Sender-side cleanup for a payload that may never have been
        decoded (crashed receiver).  Idempotent; default no-op."""

    def payload_nbytes(self, payload: Dict[str, Any]) -> int:
        """Approximate array bytes this payload carries across the
        transport (manifest/JSON framing excluded) — what the fleet's
        bytes-sent and compression-ratio metrics report.  0 when a
        codec cannot tell."""
        return 0

    # -- channel-state hooks (no-ops for stateless codecs) --------------
    def note_sent(self, channel: str, arrays: Dict[str, np.ndarray]) -> None:
        """Sender hook: the receiver on ``channel`` now holds exactly
        ``arrays`` (e.g. a worker returned its round output)."""

    def note_received(self, channel: str, arrays: Dict[str, np.ndarray]) -> None:
        """Receiver hook: the local side of ``channel`` now holds
        exactly ``arrays`` (the base for the next delta)."""

    def invalidate(self, channel: Optional[str] = None) -> None:
        """Forget channel state so the next encode ships a full payload
        (e.g. the receiver process was respawned).  ``None`` = all."""


# ----------------------------------------------------------------------
# Instance plumbing: per-process receiver singletons + sender factories.
# ----------------------------------------------------------------------
_INSTANCES: Dict[str, WireFormat] = {}


def create_wire_format(name: str) -> WireFormat:
    """A fresh codec instance (sender side: one per coordinator)."""
    return WIRE_FORMATS.create(WIRE_FORMATS.get(name).name)


def get_wire_format(name: str) -> WireFormat:
    """The per-process singleton codec (receiver side: workers decode
    through this so channel caches persist across jobs)."""
    canonical = WIRE_FORMATS.get(name).name
    instance = _INSTANCES.get(canonical)
    if instance is None:
        instance = _INSTANCES[canonical] = WIRE_FORMATS.create(canonical)
    return instance


def decode_state_payload(payload: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Decode any wire payload via its self-describing ``wire`` key."""
    return get_wire_format(payload["wire"]).decode(payload)


def resolve_wire_format(name: Optional[str] = None) -> Optional[str]:
    """Canonical wire-format name, or None meaning "coordinator picks".

    Precedence: explicit ``name`` > :data:`WIRE_FORMAT_ENV` > None.
    Unknown names raise :class:`~repro.registry.UnknownComponentError`
    with a "did you mean ...?" suggestion.
    """
    if name is None:
        name = os.environ.get(WIRE_FORMAT_ENV) or None
    if name is None:
        return None
    return WIRE_FORMATS.get(name).name


def default_wire_format() -> str:
    """The format the coordinator picks for cross-process rounds when
    nothing is selected: ``delta`` (which rides ``shm`` where the
    platform supports it and ``json-b64`` otherwise)."""
    return "delta"


def reset_wire_caches() -> None:
    """Drop this process's receiver singletons (test isolation helper)."""
    _INSTANCES.clear()


def lossless_wire_format_names() -> List[str]:
    """Registered formats whose round trip is bitwise on every send
    (``lossless`` registration metadata; lossy compressed deltas are
    excluded).  The fleet-of-1 == plain-Session identity contract is
    asserted over exactly this set."""
    return sorted(
        entry.name
        for entry in WIRE_FORMATS.entries()
        if entry.metadata.get("lossless", True)
    )


def _raw_view(contiguous: np.ndarray) -> memoryview:
    """The array's bytes as a flat view — no copy (DESIGN.md §7).

    ``memoryview.cast`` rejects zero-size views, so empty arrays map to
    an empty view explicitly.
    """
    if contiguous.nbytes == 0:
        return memoryview(b"")
    return memoryview(contiguous).cast("B")


def array_hash(value: Any) -> str:
    """Content hash of an array: blake2b over dtype + shape + raw bytes.

    Bitwise-sensitive (two arrays hash equal iff dtype, shape, and every
    byte agree), so it is safe as the ``delta`` format's change test.
    """
    array = np.asarray(value)
    contiguous = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(repr(tuple(array.shape)).encode("ascii"))
    digest.update(_raw_view(contiguous))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# json-b64: the bit-exact, JSON-compatible reference codec.
# ----------------------------------------------------------------------
@register_wire_format(
    "json-b64", label="Base64 JSON", aliases=("json", "b64"), lossless=True
)
class JsonB64Format(WireFormat):
    """Base64 of the raw bytes + dtype + shape (the archival format)."""

    name = "json-b64"

    def encode(
        self, arrays: Dict[str, np.ndarray], *, channel: Optional[str] = None
    ) -> Dict[str, Any]:
        out: Dict[str, Dict[str, Any]] = {}
        for key, value in arrays.items():
            array = np.asarray(value)
            # ascontiguousarray promotes 0-d to 1-d, so record the true
            # shape first; the raw bytes are identical either way.  The
            # encoder reads the buffer in place through a memoryview —
            # state_dict() already owns fresh copies, so materializing
            # a second one via tobytes() would be pure overhead
            # (DESIGN.md §7).
            contiguous = np.ascontiguousarray(array)
            out[key] = {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "data": base64.b64encode(_raw_view(contiguous)).decode("ascii"),
            }
        return {"wire": self.name, "arrays": out}

    def decode(
        self, payload: Dict[str, Any], *, channel: Optional[str] = None
    ) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for key, value in payload["arrays"].items():
            flat = np.frombuffer(
                base64.b64decode(value["data"]), dtype=np.dtype(value["dtype"])
            )
            out[key] = flat.reshape(tuple(value["shape"])).copy()
        return out

    def payload_nbytes(self, payload: Dict[str, Any]) -> int:
        # base64 expands 3 raw bytes into 4 characters (padded).
        return sum(
            len(spec["data"]) * 3 // 4 for spec in payload["arrays"].values()
        )


# ----------------------------------------------------------------------
# shm: one shared-memory segment per payload + a JSON manifest.
# ----------------------------------------------------------------------
_SHM_AVAILABLE: Optional[bool] = None

#: Segment names created by *this* process that no decode/release has
#: confirmed unlinked yet — the leak-check surface for tests and the
#: perf suite (empty after every round when the lifecycle is honored).
_LIVE_SEGMENTS: set = set()


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works here (cached
    one-time probe; restricted sandboxes may lack /dev/shm)."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=1)
            segment.close()
            segment.unlink()
            _SHM_AVAILABLE = True
        except Exception:
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


def outstanding_shm_segments() -> List[str]:
    """Segment names this process created and has not seen unlinked."""
    return sorted(_LIVE_SEGMENTS)


@register_wire_format(
    "shm", label="Shared memory", aliases=("shared-memory",), lossless=True
)
class ShmFormat(WireFormat):
    """Arrays ride a named shared-memory segment; only the manifest
    (dtype/shape/offset per array) crosses the pipe.

    Lifecycle: ``encode`` creates the segment and closes its own
    mapping (the name keeps it alive); exactly one ``decode`` attaches,
    copies the arrays out, and **unlinks**; the sender calls
    :meth:`release` afterwards as an idempotent backstop, which unlinks
    only if the receiver never did (e.g. it crashed).  Exactly one
    unlink ever happens, and tests verify the name is gone either way.
    """

    name = "shm"

    def __init__(self) -> None:
        if not shm_available():
            raise RuntimeError(
                "wire format 'shm' needs a working multiprocessing."
                "shared_memory (no /dev/shm here?); use 'json-b64' instead"
            )

    def encode(
        self, arrays: Dict[str, np.ndarray], *, channel: Optional[str] = None
    ) -> Dict[str, Any]:
        from multiprocessing import shared_memory

        manifest: Dict[str, Dict[str, Any]] = {}
        staged = []
        size = 0
        for key, value in arrays.items():
            array = np.asarray(value)
            contiguous = np.ascontiguousarray(array)
            if contiguous.nbytes:
                size = -(-size // _SHM_ALIGN) * _SHM_ALIGN
                staged.append((contiguous, size))
                offset: Optional[int] = size
                size += contiguous.nbytes
            else:  # empty arrays carry no bytes, only manifest shape
                offset = None
            manifest[key] = {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        if size == 0:
            return {"wire": self.name, "segment": None, "size": 0, "arrays": manifest}
        segment = shared_memory.SharedMemory(create=True, size=size)
        try:
            for contiguous, offset in staged:
                dest = np.frombuffer(
                    segment.buf,
                    dtype=contiguous.dtype,
                    count=contiguous.size,
                    offset=offset,
                )
                dest[:] = contiguous.reshape(-1)
                del dest
        except BaseException:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views released above
                pass
            segment.unlink()
            raise
        name = segment.name
        segment.close()  # the *name* keeps the segment alive, not our mapping
        _LIVE_SEGMENTS.add(name)
        from repro.obs import metrics

        metrics().counter("wire.shm_bytes").inc(size)
        return {"wire": self.name, "segment": name, "size": size, "arrays": manifest}

    def decode(
        self, payload: Dict[str, Any], *, channel: Optional[str] = None
    ) -> Dict[str, np.ndarray]:
        from multiprocessing import shared_memory

        out: Dict[str, np.ndarray] = {}
        name = payload["segment"]
        manifest = payload["arrays"]
        if name is None:  # all-empty payload: no segment was created
            for key, spec in manifest.items():
                out[key] = np.zeros(tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]))
            return out
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError as exc:
            raise WireProtocolError(
                f"shared-memory segment {name!r} is gone (decoded twice, or "
                "released before decode?)"
            ) from exc
        try:
            for key, spec in manifest.items():
                dtype = np.dtype(spec["dtype"])
                shape = tuple(spec["shape"])
                if spec["offset"] is None:
                    out[key] = np.zeros(shape, dtype=dtype)
                    continue
                count = int(np.prod(shape, dtype=np.int64)) if shape else 1
                src = np.frombuffer(
                    segment.buf, dtype=dtype, count=count, offset=spec["offset"]
                )
                out[key] = src.reshape(shape).copy()
                del src  # drop the buffer export before close()
        finally:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views released above
                pass
            try:
                segment.unlink()  # receiver owns the unlink on the happy path
            except FileNotFoundError:  # pragma: no cover - racing release()
                pass
            _LIVE_SEGMENTS.discard(name)
        return out

    def payload_nbytes(self, payload: Dict[str, Any]) -> int:
        return int(payload.get("size") or 0)

    def release(self, payload: Dict[str, Any]) -> None:
        from multiprocessing import shared_memory

        name = payload.get("segment")
        if not name:
            return
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            _LIVE_SEGMENTS.discard(name)  # receiver already unlinked it
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - no views were taken
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - racing decode
            pass
        _LIVE_SEGMENTS.discard(name)


# ----------------------------------------------------------------------
# delta: ship only arrays whose content hash changed on this channel.
# ----------------------------------------------------------------------
@register_wire_format("delta", label="Content-hash delta", aliases=("diff",), lossless=True)
class DeltaFormat(WireFormat):
    """Hash-diffed sends over named channels, for fleet-style repeats.

    The first send on a channel (and any send after
    :meth:`invalidate`) ships every array; subsequent sends ship only
    the arrays whose :func:`array_hash` changed since the last send,
    through the inner codec (``shm`` where available, else
    ``json-b64``).  The receiver merges changed arrays over its cached
    base and re-verifies every *reused* array against the sender's
    hash, so worker respawns or cache drift fail loudly
    (:class:`WireProtocolError`) instead of corrupting a round.

    Compressed variants subclass this and override the
    :meth:`_compress`/:meth:`_decompress` pair.  The protocol hashes
    the sender-side *reconstruction* (what the receiver will actually
    hold after decompressing), never the pre-compression array — both
    sides run the same deterministic arithmetic, so the receiver's
    hash verification still catches any cache drift while agreeing
    bitwise on the lossy payload itself.  Lossy subclasses set
    ``lossless = False`` and keep per-channel reconstruction bases so
    the next send diffs against what the receiver truly has.
    """

    name = "delta"

    def __init__(self, inner: Optional[str] = None) -> None:
        inner_name = inner if inner is not None else (
            "shm" if shm_available() else "json-b64"
        )
        self.inner_name = WIRE_FORMATS.get(inner_name).name
        if self.inner_name == self.name:
            raise ValueError("delta cannot nest inside itself")
        self._inner: WireFormat = WIRE_FORMATS.create(self.inner_name)
        self._sent_hashes: Dict[str, Dict[str, str]] = {}  # sender side
        # Sender-side reconstruction bases (lossy subclasses only): the
        # arrays the receiver holds after decoding — the diff base for
        # the next send, since the receiver never saw the exact state.
        self._sent_bases: Dict[str, Dict[str, np.ndarray]] = {}
        self._cache: Dict[str, Dict[str, np.ndarray]] = {}  # receiver side

    @property
    def response_format(self) -> str:
        return self.inner_name

    # -- compression hooks (identity in the lossless base class) --------
    def _compress(
        self, key: str, array: np.ndarray, base: Optional[np.ndarray]
    ) -> Tuple[Dict[str, np.ndarray], Optional[Dict[str, Any]], np.ndarray]:
        """Compress one changed array into wire entries.

        Returns ``(entries, meta, reconstruction)``: the inner-codec
        arrays to ship (keys namespaced by the codec), a JSON-ish meta
        dict (``None`` = shipped raw), and the array the receiver will
        reconstruct — bitwise equal to ``array`` iff lossless.  ``base``
        is the receiver's current copy (``None`` when unknown).
        """
        return {key: array}, None, array

    def _decompress(
        self,
        key: str,
        entries: Dict[str, np.ndarray],
        meta: Dict[str, Any],
        base: Optional[np.ndarray],
    ) -> np.ndarray:
        """Inverse of :meth:`_compress` for entries carrying meta."""
        raise WireProtocolError(
            f"wire format {self.name!r} cannot decode codec meta for {key!r}"
        )

    def encode(
        self, arrays: Dict[str, np.ndarray], *, channel: Optional[str] = None
    ) -> Dict[str, Any]:
        prev = self._sent_hashes.get(channel) if channel is not None else None
        prev_bases = self._sent_bases.get(channel, {})
        full = prev is None  # first send (or invalidated, or channel-less)
        hashes: Dict[str, str] = {}
        changed: Dict[str, np.ndarray] = {}
        codec: Dict[str, Dict[str, Any]] = {}
        new_bases: Dict[str, np.ndarray] = {}
        for key, value in arrays.items():
            array = np.asarray(value)
            if full:
                # Full sends are bitwise under every delta codec: they
                # (re)establish the exact base after respawn/invalidate.
                changed[key] = array
                hashes[key] = array_hash(array)
                if not self.lossless:
                    new_bases[key] = array
                continue
            true_hash = array_hash(array)
            if prev.get(key) == true_hash:
                hashes[key] = true_hash
                if not self.lossless:
                    new_bases[key] = prev_bases.get(key, array)
                continue
            entries, meta, recon = self._compress(key, array, prev_bases.get(key))
            recon_hash = true_hash if meta is None else array_hash(recon)
            if prev.get(key) == recon_hash:
                # Compresses to exactly what the receiver already holds.
                hashes[key] = recon_hash
                if not self.lossless:
                    new_bases[key] = prev_bases.get(key, recon)
                continue
            changed.update(entries)
            if meta is not None:
                codec[key] = meta
            hashes[key] = recon_hash
            if not self.lossless:
                new_bases[key] = recon
        if channel is not None:
            self._sent_hashes[channel] = hashes
            if not self.lossless:
                self._sent_bases[channel] = new_bases
        return {
            "wire": self.name,
            "channel": channel,
            "full": full,
            "hashes": hashes,
            "codec": codec,
            "inner": self._inner.encode(changed, channel=channel),
        }

    def decode(
        self, payload: Dict[str, Any], *, channel: Optional[str] = None
    ) -> Dict[str, np.ndarray]:
        channel = payload["channel"]
        changed = self._inner.decode(payload["inner"])
        hashes: Dict[str, str] = payload["hashes"]
        codec: Dict[str, Dict[str, Any]] = payload.get("codec") or {}
        if payload["full"]:
            base: Dict[str, np.ndarray] = {}
        else:
            cached = self._cache.get(channel)
            if cached is None:
                raise WireProtocolError(
                    f"delta payload on channel {channel!r} has no cached base "
                    "in this process (receiver respawned without the sender "
                    "invalidating the channel?)"
                )
            base = cached
        out: Dict[str, np.ndarray] = {}
        for key, expected in hashes.items():
            meta = codec.get(key)
            if meta is not None:
                value = self._decompress(key, changed, meta, base.get(key))
                if array_hash(value) != expected:
                    raise WireProtocolError(
                        f"codec reconstruction of {key!r} on channel "
                        f"{channel!r} does not match the sender's content hash"
                    )
                out[key] = value
                continue
            if key in changed:
                out[key] = changed[key]
                continue
            value = base.get(key)
            if value is None or array_hash(value) != expected:
                raise WireProtocolError(
                    f"delta cache for channel {channel!r} does not match the "
                    f"sender's content hash for array {key!r}"
                )
            out[key] = value
        if channel is not None:
            self._cache[channel] = dict(out)
        return dict(out)

    def release(self, payload: Dict[str, Any]) -> None:
        self._inner.release(payload["inner"])

    def payload_nbytes(self, payload: Dict[str, Any]) -> int:
        # Only the changed arrays ride the inner codec; hashes/manifest
        # are negligible next to array bytes.
        return self._inner.payload_nbytes(payload["inner"])

    def note_sent(self, channel: str, arrays: Dict[str, np.ndarray]) -> None:
        self._sent_hashes[channel] = {
            key: array_hash(value) for key, value in arrays.items()
        }
        if not self.lossless:
            # The receiver handed these arrays back losslessly (reply
            # legs use the inner codec), so they ARE its current base.
            self._sent_bases[channel] = {
                key: np.asarray(value).copy() for key, value in arrays.items()
            }

    def note_received(self, channel: str, arrays: Dict[str, np.ndarray]) -> None:
        self._cache[channel] = dict(arrays)

    def invalidate(self, channel: Optional[str] = None) -> None:
        if channel is None:
            self._sent_hashes.clear()
            self._sent_bases.clear()
            self._cache.clear()
        else:
            self._sent_hashes.pop(channel, None)
            self._sent_bases.pop(channel, None)
            self._cache.pop(channel, None)


# ----------------------------------------------------------------------
# Compressed deltas: lossy codecs for bandwidth-constrained broadcasts.
# ----------------------------------------------------------------------
@register_wire_format(
    "delta-q8",
    label="Int8-quantized delta",
    aliases=("q8", "quantized"),
    lossless=False,
)
class DeltaQ8Format(DeltaFormat):
    """``delta`` with changed float arrays quantized to int8.

    Tolerance contract (docs/FLEET.md codec table):

    * Quantization is affine with a per-array float scale and integer
      zero point: ``q = clip(rint(x / scale) + zp, -128, 127)``,
      ``x_hat = (q - zp) * scale`` with
      ``scale = (max(x, 0) - min(x, 0)) / 255`` — so the per-element
      absolute error is at most ``scale``.
    * Exact zeros are preserved exactly (the zero point is an integer,
      so ``x == 0`` reconstructs to ``0.0`` bitwise).
    * Non-float dtypes, arrays smaller than ``min_size`` elements,
      non-finite arrays, and full (first / post-invalidate) sends ship
      raw — bitwise.
    * Reply legs use the lossless inner codec (``response_format``), so
      only the broadcast direction is quantized.

    Both ends compute the reconstruction with identical float64
    arithmetic, so the hash-verified protocol state stays consistent
    and quantization is deterministic wherever it runs (serial ==
    parallel holds under this codec too).
    """

    name = "delta-q8"
    lossless = False

    def __init__(self, inner: Optional[str] = None, min_size: int = 64) -> None:
        super().__init__(inner=inner)
        if min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {min_size}")
        self.min_size = int(min_size)

    def _compress(self, key, array, base):
        if (
            array.dtype.kind != "f"
            or array.size < self.min_size
            or not bool(np.isfinite(array).all())
        ):
            return {key: array}, None, array
        lo = min(float(array.min()), 0.0)
        hi = max(float(array.max()), 0.0)
        scale = (hi - lo) / 255.0
        if scale == 0.0:  # all-zero array: raw is already one byte/elem shy
            return {key: array}, None, array
        zero_point = int(round(-128.0 - lo / scale))
        q = np.clip(
            np.rint(array.astype(np.float64) / scale) + zero_point, -128, 127
        ).astype(np.int8)
        recon = self._dequantize(q, scale, zero_point, array.dtype)
        meta = {
            "kind": "q8",
            "scale": scale,
            "zero_point": zero_point,
            "dtype": array.dtype.str,
        }
        return {key: q}, meta, recon

    @staticmethod
    def _dequantize(
        q: np.ndarray, scale: float, zero_point: int, dtype: np.dtype
    ) -> np.ndarray:
        return ((q.astype(np.float64) - zero_point) * scale).astype(dtype)

    def _decompress(self, key, entries, meta, base):
        q = entries.get(key)
        if q is None:
            raise WireProtocolError(f"delta-q8 payload is missing array {key!r}")
        return self._dequantize(
            q, float(meta["scale"]), int(meta["zero_point"]), np.dtype(meta["dtype"])
        )


@register_wire_format(
    "delta-topk",
    label="Sparse top-k delta",
    aliases=("topk", "sparse"),
    lossless=False,
)
class DeltaTopKFormat(DeltaFormat):
    """``delta`` shipping only each changed float array's largest moves.

    For a changed array with a known receiver base, only the
    ``ceil(fraction * size)`` elements with the largest ``|new - base|``
    are shipped, as a sorted int64 index vector plus the *exact* new
    values (two inner entries per array).  The receiver overlays them
    on its base.

    Tolerance contract (docs/FLEET.md codec table): shipped elements
    are exact; every other element keeps the receiver's previous value,
    so its deviation from the true array is at most the smallest
    shipped ``|change|`` of that send.  Non-float dtypes, arrays with
    no usable base (first send, shape/dtype change), ``k >= size``, and
    full sends ship raw — bitwise.  Reply legs use the lossless inner
    codec.
    """

    name = "delta-topk"
    lossless = False

    def __init__(self, inner: Optional[str] = None, fraction: float = 0.1) -> None:
        super().__init__(inner=inner)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def _compress(self, key, array, base):
        if (
            array.dtype.kind != "f"
            or base is None
            or base.shape != array.shape
            or base.dtype != array.dtype
            or array.size == 0
        ):
            return {key: array}, None, array
        k = max(1, int(math.ceil(self.fraction * array.size)))
        if k >= array.size:
            return {key: array}, None, array
        flat_new = np.ascontiguousarray(array).reshape(-1)
        flat_base = np.ascontiguousarray(base).reshape(-1)
        moves = np.abs(flat_new.astype(np.float64) - flat_base.astype(np.float64))
        picked = np.argpartition(moves, array.size - k)[array.size - k :]
        indices = np.sort(picked).astype(np.int64)
        values = flat_new[indices].copy()
        recon = flat_base.copy()
        recon[indices] = values
        recon = recon.reshape(array.shape)
        meta = {"kind": "topk", "k": int(k)}
        return {f"{key}\x00idx": indices, f"{key}\x00val": values}, meta, recon

    def _decompress(self, key, entries, meta, base):
        if base is None:
            raise WireProtocolError(
                f"delta-topk payload for {key!r} has no cached base array"
            )
        indices = entries.get(f"{key}\x00idx")
        values = entries.get(f"{key}\x00val")
        if indices is None or values is None:
            raise WireProtocolError(
                f"delta-topk payload is missing the index/value pair for {key!r}"
            )
        recon = np.ascontiguousarray(base).reshape(-1).copy()
        recon[indices] = values
        return recon.reshape(base.shape)
