"""Environment-drift experiment (DESIGN.md ablation F).

Streams a class-incremental drift (phases unlock new classes) and
compares how well each policy's encoder serves the *newly introduced*
classes — the paper's "adapt to new environments" story quantified.

Metric: after the full stream, a 100%-label probe is trained and
per-class accuracy is split into "old" classes (present from phase 1)
and "new" classes (introduced in the final phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.framework import OnDeviceContrastiveLearner
from repro.data.augment import SimCLRAugment
from repro.data.drift import DriftStream, growing_phases
from repro.experiments.config import StreamExperimentConfig, default_config
from repro.registry import canonical_policy_names, create_policy
from repro.session import build_components
from repro.metrics.accuracy import per_class_accuracy
from repro.train.classifier import LinearProbe
from repro.utils.tables import format_table

__all__ = ["DriftResult", "run_drift_experiment", "format_drift"]


@dataclass
class DriftResult:
    """Old-class vs new-class accuracy per policy after a drift stream."""

    config: StreamExperimentConfig
    num_phases: int
    new_classes: Sequence[int]
    overall: Dict[str, float] = field(default_factory=dict)
    old_class_acc: Dict[str, float] = field(default_factory=dict)
    new_class_acc: Dict[str, float] = field(default_factory=dict)


def run_drift_experiment(
    config: Optional[StreamExperimentConfig] = None,
    policies: Sequence[str] = ("contrast-scoring", "random-replace", "fifo"),
    num_phases: int = 2,
) -> DriftResult:
    """Run the class-incremental drift comparison."""
    config = config if config is not None else default_config()
    policies = canonical_policy_names(policies)

    # establish the phase structure once (shared by all policies)
    reference = build_components(config)
    phases = growing_phases(reference.dataset.num_classes, num_phases)
    phase_length = config.total_samples // num_phases
    new_classes = sorted(set(phases[-1]) - set(phases[-2] if num_phases > 1 else []))

    result = DriftResult(
        config=config,
        num_phases=num_phases,
        new_classes=new_classes,
    )
    for policy_name in policies:
        comp = build_components(config)
        policy = create_policy(
            policy_name,
            scorer=comp.scorer,
            capacity=config.buffer_size,
            rng=comp.rngs.get("policy"),
            temperature=config.temperature,
        )
        learner = OnDeviceContrastiveLearner(
            comp.encoder,
            comp.projector,
            policy,
            config.buffer_size,
            comp.rngs.get("augment"),
            temperature=config.temperature,
            lr=config.lr,
            weight_decay=config.weight_decay,
            augment=SimCLRAugment(
                min_crop_scale=config.augment_min_crop,
                jitter_strength=config.augment_jitter,
            ),
        )
        stream = DriftStream(
            comp.dataset,
            config.stc,
            comp.rngs.get("stream"),
            phases=phases,
            phase_length=phase_length,
        )
        learner.fit(stream.segments(config.buffer_size, config.total_samples))

        # probe on the full class population
        rngs = comp.rngs
        train_x, train_y = comp.dataset.make_split(
            config.probe_train_per_class, rngs.get("drift-train-pool")
        )
        test_x, test_y = comp.dataset.make_split(
            config.probe_test_per_class, rngs.get("drift-test-pool")
        )
        probe = LinearProbe(
            comp.encoder,
            comp.dataset.num_classes,
            rngs.get("drift-probe"),
            lr=config.probe_lr,
            epochs=config.probe_epochs,
        )
        probe.fit(probe.extract_features(train_x), train_y)
        predictions = probe.predict(test_x)
        per_class = per_class_accuracy(
            predictions, test_y, comp.dataset.num_classes
        )
        old_classes = [
            c for c in range(comp.dataset.num_classes) if c not in new_classes
        ]
        result.overall[policy_name] = float((predictions == test_y).mean())
        result.old_class_acc[policy_name] = (
            float(np.nanmean(per_class[old_classes])) if old_classes else float("nan")
        )
        result.new_class_acc[policy_name] = float(
            np.nanmean(per_class[new_classes])
        )
    return result


def format_drift(result: DriftResult) -> str:
    header = [
        "method",
        "overall acc",
        "old-class acc",
        f"new-class acc ({len(result.new_classes)} classes)",
    ]
    rows = []
    for policy in result.overall:
        rows.append(
            [
                policy,
                f"{result.overall[policy]:.3f}",
                f"{result.old_class_acc[policy]:.3f}",
                f"{result.new_class_acc[policy]:.3f}",
            ]
        )
    return format_table(header, rows)
