"""Process-parallel sweep engine for multi-seed / multi-policy grids.

Selection-policy comparisons only become meaningful over many-seed
sweeps, and every run of a sweep is embarrassingly parallel: runs share
no mutable state (each builds its own components from its config, and
every stochastic component draws from a per-run
:class:`~repro.utils.rng.RngRegistry` seeded by ``config.seed`` alone).
This module fans such grids out over a **persistent**
:class:`~repro.experiments.pool.WorkerPool` of warm processes:

* **Specs, not objects** — a sweep is a list of :class:`SweepSpec`
  values (config + policy + run options).  Specs cross the process
  boundary as the JSON-compatible payload of
  :func:`repro.session.config_to_dict`, and results come back as
  :meth:`~repro.session.StreamRunResult.to_dict` payloads, so the wire
  format is the same stable schema used for archiving.  (Array-heavy
  payloads — fleet device state — additionally pick a codec from the
  ``WIRE_FORMATS`` registry; see :mod:`repro.experiments.wire`.)
* **Deterministic merging** — results are returned in spec order
  regardless of worker completion order, and the round trip through
  ``to_dict``/``from_dict`` is lossless, so a parallel sweep is
  bitwise-identical to the serial one on every deterministic field
  (:func:`result_fingerprint`; wall-clock timings necessarily differ).
* **RNG isolation** — follows from the per-run registries: a worker
  process never touches another run's generators, and no component
  draws from numpy's global RNG.  The equivalence tests in
  ``tests/integration/test_parallel.py`` enforce this.
* **Warm workers** — pools persist across :func:`run_jobs` calls
  (keyed by size + start method), so repeated fan-outs — fleet rounds,
  sweep batches — pay worker startup once per process, not per call.
* **Crash containment** — a worker dying mid-job is a
  :class:`~repro.experiments.pool.WorkerCrashedError`, not a raw
  pickling/queue error: the affected jobs are re-run serially in the
  parent (with a warning naming the crash), and the pool respawns the
  dead slot for subsequent calls.
* **Graceful fallback** — ``workers=1`` (or a single spec) runs serially
  in-process with zero multiprocessing involvement, and an unavailable
  multiprocessing substrate degrades to the serial path with a warning.
* **Per-stage timing** — every :func:`run_jobs` result carries a
  :class:`JobTimings` (serialize / transport / compute / merge) so the
  fleet and sweep tables can attribute wall time to stages.
* **Backend threading** — the array-backend selection
  (:mod:`repro.nn.backend`) rides each spec's config: ``config.backend``
  crosses the process boundary inside the ``config_to_dict`` payload
  and the worker's Session activates it, so a sweep of ``fused`` runs
  behaves identically under any worker count or start method.  A
  ``None`` backend inherits the worker's process default
  (``REPRO_BACKEND``, which both ``fork`` and ``spawn`` children see —
  though with a persistent pool the value is read at first pool use).

``run_multi_seed``, ``run_table2``, ``run_stc_sweep``, and
``run_learning_curves`` accept ``workers=`` and build on this engine;
the CLI exposes it as ``--workers``.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.pool import (
    POOL_UNAVAILABLE_ERRORS,
    WorkerCrashedError,
    WorkerPool,
    default_start_method,
    get_worker_pool,
)
from repro.experiments.runner import run_stream_experiment
from repro.obs import absorb_worker_telemetry, collect_worker_telemetry, metrics
from repro.session import StreamRunResult, config_from_dict, config_to_dict

__all__ = [
    "SweepSpec",
    "JobTimings",
    "JobResults",
    "SweepResults",
    "WorkerCrashedError",
    "run_sweep",
    "run_jobs",
    "format_timings_footer",
    "result_fingerprint",
    "default_start_method",
    "TIMING_FIELDS",
]

#: ``StreamRunResult.to_dict`` keys that depend on wall-clock time and
#: therefore legitimately differ between serial and parallel execution.
TIMING_FIELDS = ("mean_select_seconds", "mean_train_seconds", "wall_seconds")


@dataclass
class JobTimings:
    """Where a fan-out's wall time went (never part of fingerprints).

    ``compute_s`` is the sum of worker-measured job seconds (it exceeds
    ``wall_s`` when jobs genuinely overlap on multiple cores);
    ``transport_s`` is the parent-observed dispatch-to-result latency
    minus compute — pickling, pipe traffic, and scheduler wait.
    ``serialize_s``/``merge_s`` are filled by callers that encode
    payloads before dispatch and decode results after (the fleet
    coordinator's wire encode/decode, the sweep's payload round trip).
    """

    jobs: int = 0
    workers: int = 1
    wall_s: float = 0.0
    compute_s: float = 0.0
    transport_s: float = 0.0
    serialize_s: float = 0.0
    merge_s: float = 0.0
    crashes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "compute_s": self.compute_s,
            "transport_s": self.transport_s,
            "serialize_s": self.serialize_s,
            "merge_s": self.merge_s,
            "crashes": self.crashes,
        }

    def record(self, engine: str) -> None:
        """Mirror this fan-out into the process metrics registry
        (``jobs.*`` counters labelled by engine), making the registry
        the single telemetry source while the dict/footers stay as thin
        views for existing callers."""
        registry = metrics()
        registry.counter("jobs.wall_seconds", engine=engine).inc(self.wall_s)
        registry.counter("jobs.compute_seconds", engine=engine).inc(self.compute_s)
        registry.counter("jobs.transport_seconds", engine=engine).inc(
            self.transport_s
        )

    def merged_with(self, other: "JobTimings") -> "JobTimings":
        """Accumulate two fan-outs (used to total per-round timings)."""
        return JobTimings(
            jobs=self.jobs + other.jobs,
            workers=max(self.workers, other.workers),
            wall_s=self.wall_s + other.wall_s,
            compute_s=self.compute_s + other.compute_s,
            transport_s=self.transport_s + other.transport_s,
            serialize_s=self.serialize_s + other.serialize_s,
            merge_s=self.merge_s + other.merge_s,
            crashes=self.crashes + other.crashes,
        )


def format_timings_footer(timings: Optional[Dict[str, Any]]) -> Optional[str]:
    """One-line per-stage breakdown for experiment tables, or ``None``
    when there is nothing to report (serial runs skip the footer)."""
    if not timings or timings.get("workers", 1) <= 1:
        return None
    parts = [
        f"timings: jobs={timings.get('jobs', 0)} workers={timings.get('workers', 1)}",
        f"serialize {timings.get('serialize_s', 0.0):.3f}s",
        f"transport {timings.get('transport_s', 0.0):.3f}s",
        f"compute {timings.get('compute_s', 0.0):.3f}s",
        f"merge {timings.get('merge_s', 0.0):.3f}s",
        f"wall {timings.get('wall_s', 0.0):.3f}s",
    ]
    if timings.get("crashes"):
        parts.append(f"crashes {timings['crashes']}")
    return " ".join(parts)


class JobResults(list):
    """``run_jobs`` output: an ordinary result list (in payload order)
    that additionally carries the fan-out's :class:`JobTimings`."""

    def __init__(self, values: Sequence[Any], timings: Optional[JobTimings] = None):
        super().__init__(values)
        self.timings = timings if timings is not None else JobTimings()


class SweepResults(list):
    """``run_sweep`` output: a list of results plus its timings."""

    def __init__(self, values: Sequence[Any], timings: Optional[JobTimings] = None):
        super().__init__(values)
        self.timings = timings if timings is not None else JobTimings()


@dataclass(frozen=True)
class SweepSpec:
    """One run of a sweep: a config plus the run options of
    :func:`~repro.experiments.runner.run_stream_experiment`.

    ``tag`` is caller bookkeeping (e.g. ``"fifo/seed3"``) echoed back by
    nothing — the engine identifies runs purely by position, which is
    what makes merged results order-stable.  Execution-layer selection
    (the array backend) is part of ``config`` (``config.backend``), so
    it needs no field here and crosses the wire with the rest of the
    config payload.
    """

    config: StreamExperimentConfig
    policy: str = "contrast-scoring"
    eval_points: int = 1
    label_fraction: float = 1.0
    lazy_interval: Optional[int] = None
    score_momentum: float = 0.0
    tag: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible wire form (crosses the process boundary)."""
        return {
            "config": config_to_dict(self.config),
            "policy": self.policy,
            "eval_points": self.eval_points,
            "label_fraction": self.label_fraction,
            "lazy_interval": self.lazy_interval,
            "score_momentum": self.score_momentum,
            "tag": self.tag,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_payload`."""
        payload = dict(payload)
        payload["config"] = config_from_dict(payload["config"])
        return cls(**payload)


def _run_spec(spec: SweepSpec) -> StreamRunResult:
    """Execute one spec in the current process."""
    return run_stream_experiment(
        spec.config,
        spec.policy,
        eval_points=spec.eval_points,
        label_fraction=spec.label_fraction,
        lazy_interval=spec.lazy_interval,
        score_momentum=spec.score_momentum,
    )


def _worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: payload in, result payload out (must be module-level
    so every start method can import it).

    Telemetry the run recorded in this worker process piggybacks on the
    result payload under ``"_telemetry"`` (absent when empty, and never
    attached on the in-parent serial/fallback path); ``run_sweep`` pops
    and merges it before the result dict is parsed, so it can never
    reach a fingerprint.
    """
    result = _run_spec(SweepSpec.from_payload(payload)).to_dict()
    telemetry = collect_worker_telemetry()
    if telemetry is not None:
        result["_telemetry"] = telemetry
    return result


def _run_serial(
    worker: Callable[[Any], Any], payloads: Sequence[Any]
) -> JobResults:
    start = time.perf_counter()
    values = []
    compute = 0.0
    for payload in payloads:
        job_start = time.perf_counter()
        values.append(worker(payload))
        compute += time.perf_counter() - job_start
    return JobResults(
        values,
        JobTimings(
            jobs=len(values),
            workers=1,
            wall_s=time.perf_counter() - start,
            compute_s=compute,
        ),
    )


def run_jobs(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int = 1,
    start_method: Optional[str] = None,
    *,
    sticky: bool = False,
    sticky_keys: Optional[Sequence[int]] = None,
    pool: Optional[WorkerPool] = None,
    refresh: Optional[Callable[[int, Any], Any]] = None,
    retry_on: Sequence[type] = (),
) -> JobResults:
    """Fan ``worker(payload)`` calls out over processes, in payload order.

    The shared execution engine under :func:`run_sweep` and the fleet
    coordinator's device rounds.  ``worker`` must be a module-level
    callable (it is pickled by qualified name), and payloads/results
    should be JSON-compatible so the wire format stays the archival one
    (array-heavy payloads select a ``WIRE_FORMATS`` codec instead).

    ``workers=1`` (or a single payload) calls ``worker`` in-process —
    the same code path, so serial and parallel execution are
    bitwise-identical whenever ``worker`` is deterministic.  Parallel
    calls reuse the persistent :func:`get_worker_pool` pool (pass
    ``pool=`` to supply one, e.g. for sticky channel affinity plus
    generation tracking); an unavailable multiprocessing substrate
    degrades to serial with a warning.

    Errors raised *by* jobs propagate (first in payload order, with the
    remote traceback attached as a note).  A worker process *dying*
    mid-job is different: the affected jobs are re-run serially in the
    parent with a warning naming the
    :class:`~repro.experiments.pool.WorkerCrashedError` — the dead slot
    is respawned, and ``refresh(index, payload)``, if given, supplies a
    replacement payload for the re-run (stateful wire formats use this
    to re-encode a standalone payload).  ``retry_on`` extends the
    serial-re-run treatment to job-raised exception types whose cause
    is transport state rather than the job itself — the fleet
    coordinator passes ``WireProtocolError`` so a delta payload routed
    to a mid-call respawned worker (whose caches died with the old
    process) recovers instead of failing the round.  ``sticky_keys``
    is forwarded to :meth:`WorkerPool.map` for identity-stable routing
    of varying job lists.

    The returned list is a :class:`JobResults` carrying
    :class:`JobTimings`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    payloads = list(payloads)
    if not payloads:
        return JobResults([], JobTimings(workers=min(workers, 1)))
    workers = min(workers, len(payloads))
    if workers == 1 and pool is None:
        # A caller-supplied pool is used even for a single payload:
        # sticky channel state (delta caches) lives in its workers, so
        # downgrading to in-parent serial would strand those caches.
        return _run_serial(worker, payloads)
    if pool is None:
        try:
            pool = get_worker_pool(workers, start_method)
        except POOL_UNAVAILABLE_ERRORS as exc:
            # Pool *creation* failing (e.g. missing POSIX semaphores in
            # a restricted sandbox) degrades to serial.  Errors raised
            # by the jobs themselves propagate: silently rerunning a
            # failing sweep serially would double its wall clock and
            # bury the real error.
            warnings.warn(
                f"multiprocessing unavailable ({exc}); running jobs serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return _run_serial(worker, payloads)

    start = time.perf_counter()
    raw: Dict[str, Any] = {}
    values = pool.map(
        worker,
        payloads,
        sticky=sticky,
        sticky_keys=sticky_keys,
        return_exceptions=True,
        timings=raw,
    )
    retry_types: Tuple[type, ...] = (WorkerCrashedError, *retry_on)
    # Job-raised exceptions propagate (first in payload order).
    for value in values:
        if isinstance(value, BaseException) and not isinstance(value, retry_types):
            raise value
    # Worker *crashes* (and caller-nominated transport-state errors)
    # fail only their jobs: warn with the named error and fall back to
    # serial in the parent for the affected payloads.
    crashed = [
        index for index, value in enumerate(values) if isinstance(value, retry_types)
    ]
    if crashed:
        metrics().counter("jobs.retries").inc(len(crashed))
    for index in crashed:
        warnings.warn(
            f"{values[index]}; re-running job {index} serially",
            RuntimeWarning,
            stacklevel=2,
        )
        payload = payloads[index]
        if refresh is not None:
            payload = refresh(index, payload)
        values[index] = worker(payload)
    timings = JobTimings(
        jobs=len(payloads),
        workers=pool.size,
        wall_s=time.perf_counter() - start,
        compute_s=raw.get("compute_s", 0.0),
        transport_s=raw.get("transport_s", 0.0),
        crashes=int(raw.get("crashes", 0)),
    )
    return JobResults(values, timings)


def run_sweep(
    specs: Sequence[SweepSpec],
    workers: int = 1,
    start_method: Optional[str] = None,
) -> SweepResults:
    """Run every spec and return results in spec order.

    Parameters
    ----------
    specs: the runs to execute.
    workers: worker process count.  1 (the default) runs serially
        in-process; values above the spec count are clamped.
    start_method: multiprocessing start method (default:
        :func:`default_start_method`).

    Serial and parallel execution produce identical results on every
    deterministic field — see :func:`result_fingerprint` — because runs
    share no state and the cross-process round trip is lossless.  The
    returned list carries :class:`JobTimings` as ``.timings`` (the
    sweep tables' per-stage breakdown).
    """
    specs = list(specs)
    if workers == 1 or len(specs) <= 1:
        # In-process fast path: skip the payload round trip entirely
        # (it is lossless, so results are identical either way).
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        start = time.perf_counter()
        results = [_run_spec(spec) for spec in specs]
        wall = time.perf_counter() - start
        return SweepResults(
            results,
            JobTimings(jobs=len(specs), workers=1, wall_s=wall, compute_s=wall),
        )
    serialize_start = time.perf_counter()
    payloads = [spec.to_payload() for spec in specs]
    serialize_s = time.perf_counter() - serialize_start
    result_payloads = run_jobs(
        _worker,
        payloads,
        workers=workers,
        start_method=start_method,
    )
    merge_start = time.perf_counter()
    results = []
    for payload in result_payloads:
        # Worker-recorded telemetry merges into the parent registry and
        # never reaches the parsed result (fingerprints stay clean).
        absorb_worker_telemetry(payload.pop("_telemetry", None))
        results.append(StreamRunResult.from_dict(payload))
    timings = result_payloads.timings
    timings.serialize_s += serialize_s
    timings.merge_s += time.perf_counter() - merge_start
    timings.record("sweep")
    return SweepResults(results, timings)


def result_fingerprint(result: StreamRunResult) -> Dict[str, Any]:
    """The deterministic payload of a run: ``to_dict()`` minus the
    wall-clock timing fields (:data:`TIMING_FIELDS`).

    Two runs of the same spec — serial, parallel, or resumed — must
    produce equal fingerprints; the equivalence tests compare exactly
    this.
    """
    payload = result.to_dict()
    for key in TIMING_FIELDS:
        payload.pop(key, None)
    # Telemetry is observation only: whether metrics were enabled for a
    # run (config.obs) must never distinguish otherwise-identical runs.
    config = payload.get("config")
    if isinstance(config, dict):
        config = dict(config)
        config["obs"] = None
        payload["config"] = config
    return payload
