"""Process-parallel sweep engine for multi-seed / multi-policy grids.

Selection-policy comparisons only become meaningful over many-seed
sweeps, and every run of a sweep is embarrassingly parallel: runs share
no mutable state (each builds its own components from its config, and
every stochastic component draws from a per-run
:class:`~repro.utils.rng.RngRegistry` seeded by ``config.seed`` alone).
This module fans such grids out over ``multiprocessing`` workers:

* **Specs, not objects** — a sweep is a list of :class:`SweepSpec`
  values (config + policy + run options).  Specs cross the process
  boundary as the JSON-compatible payload of
  :func:`repro.session.config_to_dict`, and results come back as
  :meth:`~repro.session.StreamRunResult.to_dict` payloads, so the wire
  format is the same stable schema used for archiving.
* **Deterministic merging** — results are returned in spec order
  regardless of worker completion order, and the round trip through
  ``to_dict``/``from_dict`` is lossless, so a parallel sweep is
  bitwise-identical to the serial one on every deterministic field
  (:func:`result_fingerprint`; wall-clock timings necessarily differ).
* **RNG isolation** — follows from the per-run registries: a worker
  process never touches another run's generators, and no component
  draws from numpy's global RNG.  The equivalence tests in
  ``tests/integration/test_parallel.py`` enforce this.
* **Graceful fallback** — ``workers=1`` (or a single spec) runs serially
  in-process with zero multiprocessing involvement, and an unavailable
  multiprocessing substrate degrades to the serial path with a warning.
* **Backend threading** — the array-backend selection
  (:mod:`repro.nn.backend`) rides each spec's config: ``config.backend``
  crosses the process boundary inside the ``config_to_dict`` payload
  and the worker's Session activates it, so a sweep of ``fused`` runs
  behaves identically under any worker count or start method.  A
  ``None`` backend inherits the worker's process default
  (``REPRO_BACKEND``, which both ``fork`` and ``spawn`` children see).

``run_multi_seed``, ``run_table2``, ``run_stc_sweep``, and
``run_learning_curves`` accept ``workers=`` and build on this engine;
the CLI exposes it as ``--workers``.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.runner import run_stream_experiment
from repro.session import StreamRunResult, config_from_dict, config_to_dict

__all__ = [
    "SweepSpec",
    "run_sweep",
    "run_jobs",
    "result_fingerprint",
    "default_start_method",
    "TIMING_FIELDS",
]

#: ``StreamRunResult.to_dict`` keys that depend on wall-clock time and
#: therefore legitimately differ between serial and parallel execution.
TIMING_FIELDS = ("mean_select_seconds", "mean_train_seconds", "wall_seconds")


def default_start_method() -> str:
    """Preferred multiprocessing start method: ``fork`` where available
    (cheap worker startup on POSIX), else ``spawn``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class SweepSpec:
    """One run of a sweep: a config plus the run options of
    :func:`~repro.experiments.runner.run_stream_experiment`.

    ``tag`` is caller bookkeeping (e.g. ``"fifo/seed3"``) echoed back by
    nothing — the engine identifies runs purely by position, which is
    what makes merged results order-stable.  Execution-layer selection
    (the array backend) is part of ``config`` (``config.backend``), so
    it needs no field here and crosses the wire with the rest of the
    config payload.
    """

    config: StreamExperimentConfig
    policy: str = "contrast-scoring"
    eval_points: int = 1
    label_fraction: float = 1.0
    lazy_interval: Optional[int] = None
    score_momentum: float = 0.0
    tag: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible wire form (crosses the process boundary)."""
        return {
            "config": config_to_dict(self.config),
            "policy": self.policy,
            "eval_points": self.eval_points,
            "label_fraction": self.label_fraction,
            "lazy_interval": self.lazy_interval,
            "score_momentum": self.score_momentum,
            "tag": self.tag,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_payload`."""
        payload = dict(payload)
        payload["config"] = config_from_dict(payload["config"])
        return cls(**payload)


def _run_spec(spec: SweepSpec) -> StreamRunResult:
    """Execute one spec in the current process."""
    return run_stream_experiment(
        spec.config,
        spec.policy,
        eval_points=spec.eval_points,
        label_fraction=spec.label_fraction,
        lazy_interval=spec.lazy_interval,
        score_momentum=spec.score_momentum,
    )


def _worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: payload in, result payload out (must be module-level
    so every start method can import it)."""
    return _run_spec(SweepSpec.from_payload(payload)).to_dict()


def run_jobs(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int = 1,
    start_method: Optional[str] = None,
) -> List[Any]:
    """Fan ``worker(payload)`` calls out over processes, in payload order.

    The shared execution engine under :func:`run_sweep` and the fleet
    coordinator's device rounds.  ``worker`` must be a module-level
    callable (every start method pickles it by qualified name), and
    payloads/results should be JSON-compatible so the wire format stays
    the archival one.

    ``workers=1`` (or a single payload) calls ``worker`` in-process —
    the same code path, so serial and parallel execution are
    bitwise-identical whenever ``worker`` is deterministic.  An
    unavailable multiprocessing substrate degrades to serial with a
    warning; errors raised by the jobs themselves propagate.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    payloads = list(payloads)
    if not payloads:
        return []
    workers = min(workers, len(payloads))
    if workers == 1:
        return [worker(payload) for payload in payloads]
    try:
        context = multiprocessing.get_context(
            start_method if start_method is not None else default_start_method()
        )
        pool = context.Pool(processes=workers)
    except (ImportError, OSError, PermissionError) as exc:
        # Pool *creation* failing (e.g. missing POSIX semaphores in a
        # restricted sandbox) degrades to serial.  Errors raised by the
        # jobs themselves propagate: silently rerunning a failing sweep
        # serially would double its wall clock and bury the real error.
        warnings.warn(
            f"multiprocessing unavailable ({exc}); running jobs serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [worker(payload) for payload in payloads]
    with pool:
        # map() preserves input order — the ordered merge; chunksize 1
        # because jobs are long and few, so balance beats batching.
        return pool.map(worker, payloads, chunksize=1)


def run_sweep(
    specs: Sequence[SweepSpec],
    workers: int = 1,
    start_method: Optional[str] = None,
) -> List[StreamRunResult]:
    """Run every spec and return results in spec order.

    Parameters
    ----------
    specs: the runs to execute.
    workers: worker process count.  1 (the default) runs serially
        in-process; values above the spec count are clamped.
    start_method: multiprocessing start method (default:
        :func:`default_start_method`).

    Serial and parallel execution produce identical results on every
    deterministic field — see :func:`result_fingerprint` — because runs
    share no state and the cross-process round trip is lossless.
    """
    specs = list(specs)
    if workers == 1 or len(specs) <= 1:
        # In-process fast path: skip the payload round trip entirely
        # (it is lossless, so results are identical either way).
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return [_run_spec(spec) for spec in specs]
    result_payloads = run_jobs(
        _worker,
        [spec.to_payload() for spec in specs],
        workers=workers,
        start_method=start_method,
    )
    return [StreamRunResult.from_dict(payload) for payload in result_payloads]


def result_fingerprint(result: StreamRunResult) -> Dict[str, Any]:
    """The deterministic payload of a run: ``to_dict()`` minus the
    wall-clock timing fields (:data:`TIMING_FIELDS`).

    Two runs of the same spec — serial, parallel, or resumed — must
    produce equal fingerprints; the equivalence tests compare exactly
    this.
    """
    payload = result.to_dict()
    for key in TIMING_FIELDS:
        payload.pop(key, None)
    return payload
