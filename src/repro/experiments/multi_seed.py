"""Multi-seed experiment aggregation.

The paper reports results "averaged over three runs ... with different
random seeds"; this module runs any policy/config across seeds and
aggregates final accuracies (mean ± std) plus the per-seed win rate of
contrast scoring over a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.config import StreamExperimentConfig, default_config
from repro.experiments.parallel import (
    JobTimings,
    SweepSpec,
    format_timings_footer,
    run_sweep,
)
from repro.experiments.runner import StreamRunResult
from repro.registry import canonical_policy_names
from repro.utils.tables import format_table

__all__ = ["SeedAggregate", "MultiSeedResult", "run_multi_seed", "format_multi_seed"]


@dataclass
class SeedAggregate:
    """Final-accuracy statistics of one policy across seeds."""

    policy: str
    accuracies: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def count(self) -> int:
        return len(self.accuracies)


@dataclass
class MultiSeedResult:
    """Aggregates for every policy plus the underlying runs."""

    config: StreamExperimentConfig
    seeds: Sequence[int]
    aggregates: Dict[str, SeedAggregate] = field(default_factory=dict)
    runs: Dict[str, List[StreamRunResult]] = field(default_factory=dict)
    # Per-stage execution timing from run_sweep (never part of any
    # fingerprint — timing is nondeterministic by nature).
    timings: Optional[Dict[str, Any]] = None

    def win_rate(self, policy: str, baseline: str) -> float:
        """Fraction of seeds where ``policy`` beats ``baseline``."""
        wins = 0
        pairs = zip(
            self.aggregates[policy].accuracies,
            self.aggregates[baseline].accuracies,
        )
        total = 0
        for a, b in pairs:
            wins += int(a > b)
            total += 1
        if total == 0:
            raise ValueError("no paired runs to compare")
        return wins / total


def run_multi_seed(
    config: Optional[StreamExperimentConfig] = None,
    policies: Sequence[str] = ("contrast-scoring", "random-replace", "fifo"),
    seeds: Sequence[int] = (0, 1, 2),
    eval_points: int = 1,
    workers: int = 1,
) -> MultiSeedResult:
    """Run every (policy, seed) pair and aggregate final accuracies.

    ``workers > 1`` fans the (policy, seed) grid out over worker
    processes via :func:`repro.experiments.parallel.run_sweep`; the
    merged result is identical to the serial one on every deterministic
    field (runs share no state).
    """
    base = config if config is not None else default_config()
    if not seeds:
        raise ValueError("need at least one seed")
    policies = canonical_policy_names(policies)
    result = MultiSeedResult(config=base, seeds=tuple(seeds))
    specs = [
        SweepSpec(
            config=base.with_(seed=seed),
            policy=policy,
            eval_points=eval_points,
            tag=f"{policy}/seed{seed}",
        )
        for policy in policies
        for seed in seeds
    ]
    sweep = run_sweep(specs, workers=workers)
    timings: Optional[JobTimings] = getattr(sweep, "timings", None)
    if timings is not None:
        result.timings = timings.to_dict()
    sweep_runs = iter(sweep)
    for policy in policies:
        aggregate = SeedAggregate(policy=policy)
        runs: List[StreamRunResult] = [next(sweep_runs) for _ in seeds]
        aggregate.accuracies = [run.final_accuracy for run in runs]
        result.aggregates[policy] = aggregate
        result.runs[policy] = runs
    return result


def format_multi_seed(result: MultiSeedResult) -> str:
    """Render mean ± std per policy (the paper's reporting style)."""
    header = ["method", "accuracy (mean ± std)", "per-seed"]
    rows = []
    for policy, agg in result.aggregates.items():
        per_seed = ", ".join(f"{a:.3f}" for a in agg.accuracies)
        rows.append([policy, f"{agg.mean:.3f} ± {agg.std:.3f}", per_seed])
    table = format_table(header, rows)
    footer = format_timings_footer(result.timings)
    return table if footer is None else "\n".join([table, footer])
