"""Experiment harnesses that regenerate every table and figure of the
paper's evaluation (plus the ablations listed in DESIGN.md).

Sweep-shaped harnesses (``run_multi_seed``, ``run_table2``,
``run_stc_sweep``, ``run_learning_curves``) accept ``workers=`` to fan
out over processes via :mod:`repro.experiments.parallel`.

The re-exported ``make_policy`` and ``build_components`` are
deprecation shims kept for pre-registry call sites; new code uses
:func:`repro.registry.create_policy`,
:func:`repro.session.build_components`, and
:class:`repro.session.Session` (see docs/API.md).
"""

from repro.experiments.config import (
    StreamExperimentConfig,
    bench_scale,
    bench_seed,
    default_config,
    scaled_config,
)
from repro.experiments.runner import (
    POLICY_LABELS,
    POLICY_NAMES,
    StreamRunResult,
    build_components,
    make_policy,
    run_stream_experiment,
)
from repro.experiments.fig3 import Fig3Result, format_fig3, run_fig3, run_supervised_reference
from repro.experiments.learning_curves import (
    CURVE_POLICIES,
    LearningCurveResult,
    format_learning_curves,
    run_learning_curves,
)
from repro.experiments.table1 import (
    LAZY_INTERVALS,
    Table1Result,
    format_table1,
    run_table1,
)
from repro.experiments.table2 import (
    BUFFER_SIZES,
    Table2Result,
    format_table2,
    run_table2,
)
from repro.experiments.drift import DriftResult, format_drift, run_drift_experiment
from repro.experiments.parallel import SweepSpec, result_fingerprint, run_sweep
from repro.experiments.scenario_sweep import (
    ScenarioSweepResult,
    format_scenario_sweep,
    run_scenario_sweep,
)
from repro.experiments.multi_seed import (
    MultiSeedResult,
    SeedAggregate,
    format_multi_seed,
    run_multi_seed,
)
from repro.experiments.fleet import (
    FleetExperimentResult,
    format_fleet,
    run_fleet,
)
from repro.experiments.serve import (
    ServeExperimentResult,
    format_serve,
    run_serve,
)
from repro.experiments.ablations import (
    GradientAblationResult,
    MomentumAblationResult,
    ScoringViewResult,
    StcSweepResult,
    format_gradient_ablation,
    format_momentum_ablation,
    format_scoring_view_ablation,
    format_stc_sweep,
    run_gradient_ablation,
    run_momentum_ablation,
    run_scoring_view_ablation,
    run_stc_sweep,
)

__all__ = [
    "StreamExperimentConfig",
    "default_config",
    "scaled_config",
    "bench_scale",
    "bench_seed",
    "POLICY_NAMES",
    "POLICY_LABELS",
    "StreamRunResult",
    "build_components",
    "make_policy",
    "run_stream_experiment",
    "Fig3Result",
    "run_fig3",
    "run_supervised_reference",
    "format_fig3",
    "CURVE_POLICIES",
    "LearningCurveResult",
    "run_learning_curves",
    "format_learning_curves",
    "LAZY_INTERVALS",
    "Table1Result",
    "run_table1",
    "format_table1",
    "BUFFER_SIZES",
    "Table2Result",
    "run_table2",
    "format_table2",
    "GradientAblationResult",
    "run_gradient_ablation",
    "format_gradient_ablation",
    "ScoringViewResult",
    "run_scoring_view_ablation",
    "format_scoring_view_ablation",
    "StcSweepResult",
    "run_stc_sweep",
    "format_stc_sweep",
    "MomentumAblationResult",
    "run_momentum_ablation",
    "format_momentum_ablation",
    "MultiSeedResult",
    "SeedAggregate",
    "run_multi_seed",
    "format_multi_seed",
    "SweepSpec",
    "run_sweep",
    "result_fingerprint",
    "DriftResult",
    "run_drift_experiment",
    "format_drift",
    "ScenarioSweepResult",
    "run_scenario_sweep",
    "format_scenario_sweep",
    "FleetExperimentResult",
    "run_fleet",
    "format_fleet",
    "ServeExperimentResult",
    "run_serve",
    "format_serve",
]
