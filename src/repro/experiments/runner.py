"""Shared experiment machinery: component wiring and the stream runner.

Every figure/table harness builds on :func:`run_stream_experiment`,
which executes one full stage-1 run (stream → replacement → training)
while periodically probing the encoder (stage 2) to record a learning
curve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.framework import OnDeviceContrastiveLearner
from repro.core.lazy import LazyScoringSchedule
from repro.core.replacement import ContrastScoringPolicy
from repro.core.scoring import ContrastScorer
from repro.data.augment import SimCLRAugment
from repro.data.datasets import make_dataset
from repro.data.stream import TemporalStream
from repro.data.synthetic import SyntheticImageDataset
from repro.experiments.config import StreamExperimentConfig
from repro.metrics.curves import LearningCurve
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import ResNetEncoder
from repro.selection import (
    FIFOPolicy,
    KCenterPolicy,
    RandomReplacePolicy,
    ReplacementPolicy,
    SelectiveBPPolicy,
)
from repro.train.classifier import evaluate_encoder
from repro.utils.rng import RngRegistry

__all__ = [
    "POLICY_NAMES",
    "POLICY_LABELS",
    "ExperimentComponents",
    "StreamRunResult",
    "build_components",
    "make_policy",
    "run_stream_experiment",
]

#: Canonical policy identifiers used across benchmarks and the CLI.
POLICY_NAMES = ("contrast-scoring", "random-replace", "fifo", "selective-bp", "k-center")

#: Pretty labels matching the paper's figures.
POLICY_LABELS = {
    "contrast-scoring": "Contrast Scoring",
    "random-replace": "Random Replace",
    "fifo": "FIFO Replace",
    "selective-bp": "Selective-BP",
    "k-center": "K-Center",
}


@dataclass
class ExperimentComponents:
    """The wired-up pieces of one run."""

    dataset: SyntheticImageDataset
    encoder: ResNetEncoder
    projector: ProjectionHead
    scorer: ContrastScorer
    rngs: RngRegistry


@dataclass
class StreamRunResult:
    """Outcome of one stage-1 run plus its probe evaluations."""

    policy: str
    config: StreamExperimentConfig
    curve: LearningCurve
    final_accuracy: float
    final_loss: float
    mean_select_seconds: float
    mean_train_seconds: float
    rescoring_fraction: Optional[float]
    buffer_class_diversity: float
    wall_seconds: float
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def relative_batch_time(self) -> float:
        """Per-iteration time relative to training alone (Table I metric)."""
        if self.mean_train_seconds <= 0:
            return float("nan")
        return (
            self.mean_select_seconds + self.mean_train_seconds
        ) / self.mean_train_seconds


def build_components(config: StreamExperimentConfig) -> ExperimentComponents:
    """Instantiate dataset, encoder, projector, and scorer for a config."""
    rngs = RngRegistry(config.seed)
    dataset = make_dataset(config.dataset, image_size=config.image_size)
    encoder = ResNetEncoder(
        in_channels=dataset.image_shape[0],
        widths=config.encoder_widths,
        blocks_per_stage=config.encoder_blocks,
        rng=rngs.get("model"),
    )
    projector = ProjectionHead(
        encoder.feature_dim, out_dim=config.projection_dim, rng=rngs.get("model")
    )
    scorer = ContrastScorer(encoder, projector)
    return ExperimentComponents(dataset, encoder, projector, scorer, rngs)


def make_policy(
    name: str,
    scorer: ContrastScorer,
    capacity: int,
    rng: np.random.Generator,
    temperature: float = 0.5,
    lazy_interval: Optional[int] = None,
    score_momentum: float = 0.0,
) -> ReplacementPolicy:
    """Construct a policy by canonical name."""
    if name == "contrast-scoring":
        return ContrastScoringPolicy(
            scorer,
            capacity,
            lazy=LazyScoringSchedule(lazy_interval),
            score_momentum=score_momentum,
        )
    if name == "random-replace":
        return RandomReplacePolicy(capacity, rng)
    if name == "fifo":
        return FIFOPolicy(capacity)
    if name == "selective-bp":
        return SelectiveBPPolicy(scorer, capacity, temperature=temperature)
    if name == "k-center":
        return KCenterPolicy(scorer, capacity)
    raise ValueError(f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}")


def run_stream_experiment(
    config: StreamExperimentConfig,
    policy_name: str,
    eval_points: int = 6,
    label_fraction: float = 1.0,
    lazy_interval: Optional[int] = None,
    score_momentum: float = 0.0,
    components: Optional[ExperimentComponents] = None,
) -> StreamRunResult:
    """Execute one full stream-learning run and probe the encoder.

    Parameters
    ----------
    config: experiment parameters.
    policy_name: one of :data:`POLICY_NAMES`.
    eval_points: number of probe checkpoints along the stream (>= 1;
        the final checkpoint is always taken at the end).
    label_fraction: stage-2 label budget for every probe.
    lazy_interval: lazy-scoring interval T (contrast-scoring only).
    score_momentum: EMA smoothing of scores (contrast-scoring only).
    components: pre-built components (rebuilt from config when None).
    """
    if eval_points < 1:
        raise ValueError(f"eval_points must be >= 1, got {eval_points}")
    comp = components if components is not None else build_components(config)
    rngs = comp.rngs

    policy = make_policy(
        policy_name,
        comp.scorer,
        config.buffer_size,
        rngs.get("policy"),
        temperature=config.temperature,
        lazy_interval=lazy_interval,
        score_momentum=score_momentum,
    )
    augment = SimCLRAugment(
        min_crop_scale=config.augment_min_crop,
        jitter_strength=config.augment_jitter,
        grayscale_p=config.augment_grayscale_p,
    )
    learner = OnDeviceContrastiveLearner(
        comp.encoder,
        comp.projector,
        policy,
        config.buffer_size,
        rngs.get("augment"),
        temperature=config.temperature,
        lr=config.lr,
        weight_decay=config.weight_decay,
        augment=augment,
    )
    stream = TemporalStream(comp.dataset, config.stc, rngs.get("stream"))

    # Fixed evaluation pools shared across checkpoints (and across policy
    # runs with the same seed, since the registry keys are stable).
    probe_train_x, probe_train_y = comp.dataset.make_split(
        config.probe_train_per_class, rngs.get("probe-train-pool")
    )
    probe_test_x, probe_test_y = comp.dataset.make_split(
        config.probe_test_per_class, rngs.get("probe-test-pool")
    )

    def probe() -> float:
        result = evaluate_encoder(
            comp.encoder,
            probe_train_x,
            probe_train_y,
            probe_test_x,
            probe_test_y,
            comp.dataset.num_classes,
            rngs.get("probe"),
            label_fraction=label_fraction,
            lr=config.probe_lr,
            epochs=config.probe_epochs,
        )
        return result.accuracy

    total_iters = config.iterations
    eval_every = max(1, total_iters // eval_points)
    curve = LearningCurve(method=policy_name)
    diversity: List[float] = []

    start = time.perf_counter()
    final_loss = float("nan")
    for segment in stream.segments(config.buffer_size, config.total_samples):
        stats = learner.process_segment(segment)
        final_loss = stats.loss
        diversity.append(
            float((learner.buffer_class_histogram(comp.dataset.num_classes) > 0).sum())
        )
        is_last = learner.seen_inputs >= config.total_samples
        if learner.iteration % eval_every == 0 or is_last:
            curve.add(learner.seen_inputs, probe())
    wall = time.perf_counter() - start

    rescoring = None
    if isinstance(policy, ContrastScoringPolicy):
        rescoring = policy.lazy.rescoring_fraction

    return StreamRunResult(
        policy=policy_name,
        config=config,
        curve=curve,
        final_accuracy=curve.final_accuracy,
        final_loss=final_loss,
        mean_select_seconds=learner.mean_select_seconds(),
        mean_train_seconds=learner.mean_train_seconds(),
        rescoring_fraction=rescoring,
        buffer_class_diversity=float(np.mean(diversity)) if diversity else 0.0,
        wall_seconds=wall,
    )
