"""Shared experiment machinery: component wiring and the stream runner.

Every figure/table harness builds on :func:`run_stream_experiment`,
which executes one full stage-1 run (stream → selective replacement →
contrastive update) while periodically probing the encoder (stage 2) to
record a learning curve.

As of the registry/Session redesign this module is a thin compatibility
layer: the canonical implementation lives in :class:`repro.session.
Session` (execution, checkpoint/resume, lifecycle callbacks) and
:mod:`repro.registry` (component construction).  ``make_policy`` and
``build_components`` are kept as deprecation shims so existing call
sites keep working; new code should use
``repro.session.build_components`` and ``repro.registry.create_policy``.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from typing import Iterator, Optional

import numpy as np

from repro.core.scoring import ContrastScorer
from repro.registry import create_policy, policy_labels
from repro.selection.base import ReplacementPolicy
from repro.session import (
    ExperimentComponents,
    Session,
    StreamRunResult,
    build_components as _build_components,
)
from repro.experiments.config import StreamExperimentConfig

__all__ = [
    "POLICY_NAMES",
    "POLICY_LABELS",
    "ExperimentComponents",
    "StreamRunResult",
    "build_components",
    "make_policy",
    "run_stream_experiment",
]

#: Canonical policy identifiers used across benchmarks and the CLI, in
#: the paper's figure order.  Plugins registered via
#: ``@register_policy`` are *not* listed here — use
#: :func:`repro.registry.policy_names` for the full set.
POLICY_NAMES = ("contrast-scoring", "random-replace", "fifo", "selective-bp", "k-center")

class _LivePolicyLabels(Mapping):
    """A read-only live view over the policy registry's labels.

    Not a snapshot: policies registered after this module is imported
    (plugins) show their labels too.
    """

    def __getitem__(self, name: str) -> str:
        return policy_labels()[name]

    def __iter__(self) -> Iterator[str]:
        return iter(policy_labels())

    def __len__(self) -> int:
        return len(policy_labels())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(policy_labels())


#: Pretty labels matching the paper's figures (live registry metadata).
POLICY_LABELS = _LivePolicyLabels()


def build_components(config: StreamExperimentConfig) -> ExperimentComponents:
    """Deprecated shim: use :func:`repro.session.build_components`."""
    warnings.warn(
        "repro.experiments.runner.build_components is deprecated; "
        "use repro.session.build_components",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_components(config)


def make_policy(
    name: str,
    scorer: ContrastScorer,
    capacity: int,
    rng: np.random.Generator,
    temperature: float = 0.5,
    lazy_interval: Optional[int] = None,
    score_momentum: float = 0.0,
) -> ReplacementPolicy:
    """Deprecated shim: use :func:`repro.registry.create_policy`."""
    warnings.warn(
        "repro.experiments.runner.make_policy is deprecated; "
        "use repro.registry.create_policy",
        DeprecationWarning,
        stacklevel=2,
    )
    return create_policy(
        name,
        scorer=scorer,
        capacity=capacity,
        rng=rng,
        temperature=temperature,
        lazy_interval=lazy_interval,
        score_momentum=score_momentum,
    )


def run_stream_experiment(
    config: StreamExperimentConfig,
    policy_name: str,
    eval_points: int = 6,
    label_fraction: float = 1.0,
    lazy_interval: Optional[int] = None,
    score_momentum: float = 0.0,
    components: Optional[ExperimentComponents] = None,
) -> StreamRunResult:
    """Execute one full stream-learning run and probe the encoder.

    A thin wrapper over :class:`repro.session.Session` (results are
    identical); kept because every harness and benchmark phrases its
    protocol in terms of this function.

    Parameters
    ----------
    config: experiment parameters.
    policy_name: any registered policy name (see
        :func:`repro.registry.policy_names`).
    eval_points: number of probe checkpoints along the stream (>= 1;
        the final checkpoint is always taken at the end).
    label_fraction: stage-2 label budget for every probe.
    lazy_interval: lazy-scoring interval T (contrast-scoring only).
    score_momentum: EMA smoothing of scores (contrast-scoring only).
    components: pre-built components (rebuilt from config when None).
    """
    session = (
        Session(config, policy=policy_name)
        .with_eval_points(eval_points)
        .with_label_fraction(label_fraction)
        .with_lazy_interval(lazy_interval)
        .with_score_momentum(score_momentum)
    )
    if components is not None:
        session.with_components(components)
    return session.run()
