"""Fig. 3 + §IV-B harness: accuracy with different labeling ratios.

Reproduces the paper's comparison of five selection approaches at 1%
and 10% stage-2 labels on the cifar10-like stream, plus the direct
supervised-learning baselines that motivate the framework.

Paper reference values (CIFAR-10):
  1% labels : Contrast Scoring 60.47, beating baselines by
              {+8.33, +12.02, +13.9, +13.21}; supervised-only 32.11.
  10% labels: Contrast Scoring 71.75, beating baselines by
              {+4.58, +7.49, +10.09, +9.24}; supervised-only 40.53.
Reproduction target: same ordering, larger margins at 1% than at 10%,
supervised far below every contrastive pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.splits import labeled_subset
from repro.experiments.config import StreamExperimentConfig, default_config
from repro.experiments.runner import (
    POLICY_LABELS,
    POLICY_NAMES,
    run_stream_experiment,
)
from repro.registry import canonical_policy_names
from repro.session import build_components
from repro.nn.resnet import ResNetEncoder
from repro.train.classifier import evaluate_encoder
from repro.train.supervised import SupervisedBaseline
from repro.utils.rng import RngRegistry
from repro.utils.tables import format_table

__all__ = ["Fig3Result", "run_fig3", "run_supervised_reference", "format_fig3"]


@dataclass
class Fig3Result:
    """Accuracy by (policy, label fraction) plus supervised references."""

    config: StreamExperimentConfig
    label_fractions: Tuple[float, ...]
    accuracy: Dict[str, Dict[float, float]] = field(default_factory=dict)
    supervised: Dict[float, float] = field(default_factory=dict)

    def margin_over(self, baseline: str, fraction: float) -> float:
        """Contrast-scoring margin over ``baseline`` at a fraction."""
        return (
            self.accuracy["contrast-scoring"][fraction]
            - self.accuracy[baseline][fraction]
        )


def run_fig3(
    config: StreamExperimentConfig | None = None,
    policies: Sequence[str] = POLICY_NAMES,
    label_fractions: Sequence[float] = (0.01, 0.1),
    include_supervised: bool = True,
) -> Fig3Result:
    """Run the Fig. 3 experiment matrix.

    Each policy gets one stage-1 run; the resulting encoder is probed
    once per label fraction.  The supervised reference trains encoder +
    head directly on each labeled subset with no contrastive stage.
    """
    config = config if config is not None else default_config()
    policies = canonical_policy_names(policies)
    result = Fig3Result(config=config, label_fractions=tuple(label_fractions))

    for policy in policies:
        comp = build_components(config)
        # Train stage 1 once (no intermediate evals needed).
        run = run_stream_experiment(
            config, policy, eval_points=1, label_fraction=1.0, components=comp
        )
        result.accuracy[policy] = {}
        # Probe the trained encoder at each label fraction.
        rngs = comp.rngs
        train_x, train_y = comp.dataset.make_split(
            config.probe_train_per_class, rngs.get("fig3-train-pool")
        )
        test_x, test_y = comp.dataset.make_split(
            config.probe_test_per_class, rngs.get("fig3-test-pool")
        )
        for fraction in label_fractions:
            probe = evaluate_encoder(
                comp.encoder,
                train_x,
                train_y,
                test_x,
                test_y,
                comp.dataset.num_classes,
                rngs.get(f"fig3-probe-{fraction}"),
                label_fraction=fraction,
                lr=config.probe_lr,
                epochs=config.probe_epochs,
            )
            result.accuracy[policy][fraction] = probe.accuracy
        del run

    if include_supervised:
        for fraction in label_fractions:
            result.supervised[fraction] = run_supervised_reference(config, fraction)
    return result


def run_supervised_reference(
    config: StreamExperimentConfig, label_fraction: float
) -> float:
    """§IV-B baseline: supervised training on the labeled subset only."""
    rngs = RngRegistry(config.seed)
    from repro.data.datasets import make_dataset

    dataset = make_dataset(config.dataset, image_size=config.image_size)
    encoder = ResNetEncoder(
        in_channels=dataset.image_shape[0],
        widths=config.encoder_widths,
        blocks_per_stage=config.encoder_blocks,
        rng=rngs.get("supervised-model"),
    )
    train_x, train_y = dataset.make_split(
        config.probe_train_per_class, rngs.get("fig3-train-pool")
    )
    test_x, test_y = dataset.make_split(
        config.probe_test_per_class, rngs.get("fig3-test-pool")
    )
    subset = labeled_subset(train_y, label_fraction, rngs.get("supervised-subset"))
    baseline = SupervisedBaseline(
        encoder,
        dataset.num_classes,
        rngs.get("supervised-train"),
        lr=config.lr,
        weight_decay=config.weight_decay,
        epochs=max(10, config.probe_epochs),
        batch_size=min(config.buffer_size, max(2, subset.size)),
    )
    baseline.fit(train_x[subset], train_y[subset])
    return baseline.score(test_x, test_y)


def format_fig3(result: Fig3Result) -> str:
    """Render the Fig. 3 panels as aligned tables (one per fraction)."""
    blocks: List[str] = []
    for fraction in result.label_fractions:
        header = ["method", f"accuracy @ {fraction:.0%} labels", "margin of CS"]
        rows = []
        cs_acc = result.accuracy.get("contrast-scoring", {}).get(fraction)
        for policy, by_fraction in result.accuracy.items():
            acc = by_fraction[fraction]
            margin = "" if cs_acc is None or policy == "contrast-scoring" else f"+{cs_acc - acc:.3f}"
            rows.append([POLICY_LABELS.get(policy, policy), f"{acc:.3f}", margin])
        if fraction in result.supervised:
            sup = result.supervised[fraction]
            margin = "" if cs_acc is None else f"+{cs_acc - sup:.3f}"
            rows.append(["Supervised-only", f"{sup:.3f}", margin])
        blocks.append(format_table(header, rows))
    return "\n\n".join(blocks)
