"""Policy-robustness benchmark over the scenario zoo.

Joshi & Mirzasoleiman (2023) show selection-policy behavior is highly
sensitive to the data distribution; this harness quantifies that for
the repo's policies by fanning a (scenario × policy × seed) grid out
through :func:`repro.experiments.parallel.run_sweep` — the scenario
rides each spec's ``config.scenario`` across the process boundary, so
parallel results are bitwise-identical to serial ones on every
deterministic field.

The emitted robustness table has one row per scenario and one column
per policy; each cell reports the final kNN accuracy (the
training-free readout every Session records in
``result.info["final_knn_accuracy"]``) and the mean buffer class
diversity — accuracy shows *how well* the policy served the stream,
diversity shows *what it kept* to get there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.scenarios import canonical_scenario
from repro.experiments.config import StreamExperimentConfig, default_config
from repro.experiments.parallel import SweepSpec, format_timings_footer, run_sweep
from repro.experiments.runner import StreamRunResult
from repro.registry import canonical_policy_names, scenario_names
from repro.utils.tables import format_table

__all__ = [
    "ScenarioSweepResult",
    "run_scenario_sweep",
    "format_scenario_sweep",
]

#: Default policy roster: the paper's headline policy plus the two
#: baselines whose failure modes differ most across stream shapes.
SWEEP_POLICIES = ("contrast-scoring", "random-replace", "fifo")


@dataclass
class ScenarioSweepResult:
    """The (scenario × policy) robustness grid plus the underlying runs.

    ``knn_accuracy`` and ``buffer_diversity`` hold per-cell means over
    the seed roster; ``runs`` keeps every underlying
    :class:`~repro.session.StreamRunResult` for deeper analysis.
    """

    config: StreamExperimentConfig
    scenarios: Tuple[str, ...]
    policies: Tuple[str, ...]
    seeds: Tuple[int, ...]
    knn_accuracy: Dict[Tuple[str, str], float] = field(default_factory=dict)
    buffer_diversity: Dict[Tuple[str, str], float] = field(default_factory=dict)
    runs: Dict[Tuple[str, str], List[StreamRunResult]] = field(default_factory=dict)
    # Per-stage execution timing from run_sweep (never fingerprinted).
    timings: Optional[Dict[str, Any]] = None

    def robustness_gap(self, policy: str) -> float:
        """Max-minus-min kNN accuracy of ``policy`` across scenarios —
        the single-number "how distribution-sensitive is it" score."""
        cells = [self.knn_accuracy[(s, policy)] for s in self.scenarios]
        return float(max(cells) - min(cells))


def run_scenario_sweep(
    config: Optional[StreamExperimentConfig] = None,
    scenarios: Optional[Sequence[str]] = None,
    policies: Sequence[str] = SWEEP_POLICIES,
    seeds: Sequence[int] = (0,),
    eval_points: int = 1,
    workers: int = 1,
) -> ScenarioSweepResult:
    """Run every (scenario, policy, seed) cell and aggregate the grid.

    ``scenarios`` defaults to *every* registered scenario (plugins
    included); names, aliases, and wrapper compositions
    (``"corrupted(bursty(imbalanced))"``) all resolve through
    :func:`~repro.data.scenarios.canonical_scenario`, so a composition
    is one more grid row.  ``workers > 1`` fans the grid out over
    processes; the
    merged result is identical to the serial one on every deterministic
    field.
    """
    base = config if config is not None else default_config()
    if not seeds:
        raise ValueError("need at least one seed")
    roster = scenario_names() if scenarios is None else list(scenarios)
    if not roster:
        raise ValueError("need at least one scenario")
    # canonicalize (aliases collapse, compositions re-render in canonical
    # form), then dedupe — an alias plus its canonical spelling must not
    # double a grid row — keeping first-mention order
    roster = tuple(dict.fromkeys(canonical_scenario(name) for name in roster))
    policies = tuple(dict.fromkeys(canonical_policy_names(policies)))
    if not policies:
        raise ValueError("need at least one policy")
    specs = [
        SweepSpec(
            config=base.with_(scenario=scenario, seed=seed),
            policy=policy,
            eval_points=eval_points,
            tag=f"{scenario}/{policy}/seed{seed}",
        )
        for scenario in roster
        for policy in policies
        for seed in seeds
    ]
    sweep = run_sweep(specs, workers=workers)
    sweep_runs = iter(sweep)
    result = ScenarioSweepResult(
        config=base, scenarios=roster, policies=policies, seeds=tuple(seeds)
    )
    if getattr(sweep, "timings", None) is not None:
        result.timings = sweep.timings.to_dict()
    for scenario in roster:
        for policy in policies:
            runs = [next(sweep_runs) for _ in seeds]
            result.runs[(scenario, policy)] = runs
            result.knn_accuracy[(scenario, policy)] = float(
                np.mean([run.info["final_knn_accuracy"] for run in runs])
            )
            result.buffer_diversity[(scenario, policy)] = float(
                np.mean([run.buffer_class_diversity for run in runs])
            )
    return result


def format_scenario_sweep(result: ScenarioSweepResult) -> str:
    """Render the robustness table: kNN accuracy / buffer diversity."""
    header = ["scenario"] + [f"{p} (acc/div)" for p in result.policies]
    rows = []
    for scenario in result.scenarios:
        row = [scenario]
        for policy in result.policies:
            acc = result.knn_accuracy[(scenario, policy)]
            div = result.buffer_diversity[(scenario, policy)]
            row.append(f"{acc:.3f}/{div:.1f}")
        rows.append(row)
    gap = ", ".join(
        f"{policy}={result.robustness_gap(policy):.3f}"
        for policy in result.policies
    )
    lines = [
        format_table(header, rows),
        f"robustness gap (max-min kNN accuracy across scenarios): {gap}",
    ]
    footer = format_timings_footer(result.timings)
    if footer is not None:
        lines.append(footer)
    return "\n".join(lines)
