"""Table II harness: accuracy under different buffer sizes.

Sweeps buffer size over the paper's grid scaled to this substrate,
training each of {Contrast Scoring, Random, FIFO} at each size with the
learning rate scaled ∝ sqrt(buffer size) exactly as the paper does.

Paper reference shape: contrast scoring wins at every size, all methods
improve with size, and the contrast-scoring margin tends to widen with
larger buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import StreamExperimentConfig, default_config
from repro.experiments.parallel import SweepSpec, run_sweep
from repro.experiments.runner import POLICY_LABELS, StreamRunResult
from repro.nn.optim import sqrt_batch_lr_scale
from repro.registry import canonical_policy_names
from repro.utils.tables import format_table

__all__ = ["BUFFER_SIZES", "Table2Result", "run_table2", "format_table2"]

#: Paper grid {8, 32, 128, 256} shrunk by the same 8x factor as the
#: default buffer (256 -> 32); preserves the 4-point geometric sweep.
BUFFER_SIZES = (8, 16, 32, 64)

#: The policies Table II compares.
TABLE2_POLICIES = ("contrast-scoring", "random-replace", "fifo")


@dataclass
class Table2Result:
    """Accuracy by (buffer size, policy)."""

    config: StreamExperimentConfig
    buffer_sizes: Tuple[int, ...]
    runs: Dict[int, Dict[str, StreamRunResult]] = field(default_factory=dict)

    def margin(self, buffer_size: int, baseline: str) -> float:
        by_policy = self.runs[buffer_size]
        return (
            by_policy["contrast-scoring"].final_accuracy
            - by_policy[baseline].final_accuracy
        )


def run_table2(
    config: Optional[StreamExperimentConfig] = None,
    buffer_sizes: Sequence[int] = BUFFER_SIZES,
    policies: Sequence[str] = TABLE2_POLICIES,
    workers: int = 1,
) -> Table2Result:
    """Run the buffer-size sweep with sqrt lr scaling.

    ``workers > 1`` runs the (buffer size, policy) grid in parallel via
    :func:`repro.experiments.parallel.run_sweep`.
    """
    base = config if config is not None else default_config()
    policies = canonical_policy_names(policies)
    result = Table2Result(config=base, buffer_sizes=tuple(buffer_sizes))
    specs = []
    for buffer_size in buffer_sizes:
        lr = sqrt_batch_lr_scale(base.lr, buffer_size, base_batch=base.buffer_size)
        cfg = base.with_(buffer_size=buffer_size, lr=lr)
        for policy in policies:
            specs.append(
                SweepSpec(
                    config=cfg,
                    policy=policy,
                    eval_points=1,
                    label_fraction=1.0,
                    tag=f"buffer{buffer_size}/{policy}",
                )
            )
    sweep_runs = iter(run_sweep(specs, workers=workers))
    for buffer_size in buffer_sizes:
        result.runs[buffer_size] = {policy: next(sweep_runs) for policy in policies}
    return result


def format_table2(result: Table2Result) -> str:
    """Render the Table II rows."""
    header = ["buffer size", "method", "accuracy", "delta vs CS"]
    rows: List[List[str]] = []
    for buffer_size in result.buffer_sizes:
        by_policy = result.runs[buffer_size]
        cs_run = by_policy.get("contrast-scoring")
        cs_acc = cs_run.final_accuracy if cs_run is not None else None
        for policy, run in by_policy.items():
            delta = (
                ""
                if policy == "contrast-scoring" or cs_acc is None
                else f"{run.final_accuracy - cs_acc:+.3f}"
            )
            rows.append(
                [
                    str(buffer_size),
                    POLICY_LABELS.get(policy, policy),
                    f"{run.final_accuracy:.3f}",
                    delta,
                ]
            )
    return format_table(header, rows)
