"""Metrics primitives: counters, gauges, and histograms with label sets.

One :class:`MetricsRegistry` per process (``metrics()``) is the single
source for runtime telemetry across every layer — Session step loops,
the fleet coordinator, the worker pool, and the scoring service.
Components ask the registry for an instrument once (cheap dict lookup,
keyed by metric name plus a frozen label set) and then record into it
directly on the hot path.

Two rules keep telemetry out of the science:

* **Observation only.**  Instruments never touch RNG streams, never
  reorder work, and never feed values back into training — enabling
  them is bitwise-invisible to every fingerprint (enforced by
  ``tests/property/test_obs_identity.py``).
* **Gated hot paths.**  Per-step experiment metrics check
  :func:`metrics_enabled` (the ``REPRO_METRICS`` env var, the CLI
  ``--metrics`` flag, or ``config.obs``); infrastructure counters that
  fire at most once per round/batch/crash (pool respawns, serve
  errors, wire bytes) record unconditionally so they are never silently
  missing from a post-mortem.

Cross-process collection works by value, not by shared memory: a worker
records into *its own* process registry, ships
:meth:`MetricsRegistry.snapshot` home piggybacked on the existing job
payloads, and the parent :meth:`MetricsRegistry.merge`\\ s it in —
counters add, gauges last-write-win, histograms merge bucket-by-bucket
— so a fleet run yields one coherent registry no matter how many
processes trained.
"""

from __future__ import annotations

import math
import os
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_ENV",
    "metrics",
    "metrics_enabled",
    "set_metrics_enabled",
    "use_metrics",
    "reset_metrics",
]

METRICS_ENV = "REPRO_METRICS"

# Exponential histogram grid shared by every process: bucket ``i`` holds
# values in ``(START * FACTOR**(i-1), START * FACTOR**i]`` (bucket 0 is
# everything <= START, the last bucket is open-ended).  Fixed bounds are
# what make cross-process merges exact: two processes never disagree on
# which bucket a value lands in.
_BUCKET_START = 1e-6
_BUCKET_FACTOR = 2.0
_NUM_BUCKETS = 64
_LOG_FACTOR = math.log(_BUCKET_FACTOR)

LabelSet = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_index(value: float) -> int:
    """Grid bucket for ``value`` (values <= 0 land in bucket 0)."""
    if value <= _BUCKET_START:
        return 0
    index = int(math.ceil(math.log(value / _BUCKET_START) / _LOG_FACTOR))
    # Guard the float edge: log/ceil can land one short of the true
    # bucket when value sits exactly on a bound.
    if value > _BUCKET_START * _BUCKET_FACTOR ** index:
        index += 1
    return min(index, _NUM_BUCKETS - 1)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``(low, high]`` value bounds of grid bucket ``index``."""
    high = _BUCKET_START * _BUCKET_FACTOR ** index
    low = 0.0 if index == 0 else _BUCKET_START * _BUCKET_FACTOR ** (index - 1)
    return low, high


class Counter:
    """Monotonically increasing count (float increments allowed)."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> Dict[str, Any]:
        return {"value": self._value}

    def merge_state(self, state: Dict[str, Any]) -> None:
        self._value += float(state["value"])


class Gauge:
    """Last-written value (queue depth, diversity, compression ratio)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> Dict[str, Any]:
        return {"value": self._value}

    def merge_state(self, state: Dict[str, Any]) -> None:
        self._value = float(state["value"])  # last write wins


class Histogram:
    """Exponential-bucket distribution with exact count/sum/min/max.

    Buckets are sparse (index -> count) on the fixed process-wide grid,
    so :meth:`merge_state` is exact across processes.  Percentiles
    interpolate linearly inside the bucket the rank falls in, clamped
    to the observed min/max — good to a factor-of-2 bucket width, which
    is plenty for p50/p99 latency reporting.
    """

    kind = "histogram"
    __slots__ = ("_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile wants q in [0, 100], got {q}")
        if self._count == 0:
            return 0.0
        rank = q / 100.0 * self._count
        seen = 0
        for index in sorted(self._buckets):
            in_bucket = self._buckets[index]
            if seen + in_bucket >= rank:
                low, high = bucket_bounds(index)
                fraction = 0.5 if in_bucket == 0 else (rank - seen) / in_bucket
                estimate = low + (high - low) * min(max(fraction, 0.0), 1.0)
                return min(max(estimate, self._min), self._max)
            seen += in_bucket
        return self._max

    def state(self) -> Dict[str, Any]:
        return {
            # JSON round-trips dict keys as strings; stringify here so a
            # snapshot is identical whether or not it crossed a pipe.
            "buckets": {str(k): v for k, v in self._buckets.items()},
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        for key, value in state["buckets"].items():
            index = int(key)
            self._buckets[index] = self._buckets.get(index, 0) + int(value)
        self._count += int(state["count"])
        self._sum += float(state["sum"])
        if state["min"] is not None:
            self._min = min(self._min, float(state["min"]))
        if state["max"] is not None:
            self._max = max(self._max, float(state["max"]))


_INSTRUMENT_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Instruments keyed by name + label set, mergeable across processes.

    Family creation is locked (serve's TCP transport touches the
    registry from a second thread); recording into an instrument you
    already hold is plain attribute arithmetic and is left unlocked on
    purpose — every hot path resolves its instruments once, outside the
    loop.
    """

    def __init__(self) -> None:
        self._families: Dict[str, Dict[LabelSet, Any]] = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    # -- instrument accessors (get-or-create) ---------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self._instrument("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._instrument("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._instrument("histogram", name, labels)

    def _instrument(self, kind: str, name: str, labels: Dict[str, Any]) -> Any:
        key = _freeze_labels(labels)
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is None:
                self._kinds[name] = kind
                self._families[name] = {}
            elif existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {existing_kind}, not a {kind}"
                )
            family = self._families[name]
            instrument = family.get(key)
            if instrument is None:
                instrument = _INSTRUMENT_TYPES[kind]()
                family[key] = instrument
            return instrument

    # -- introspection ---------------------------------------------------
    def kind(self, name: str) -> Optional[str]:
        return self._kinds.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def series(self) -> Iterator[Tuple[str, str, Dict[str, str], Any]]:
        """Yield ``(kind, name, labels, instrument)`` sorted by name/labels."""
        with self._lock:
            items = [
                (self._kinds[name], name, dict(key), instrument)
                for name in sorted(self._families)
                for key, instrument in sorted(self._families[name].items())
            ]
        return iter(items)

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Scalar value of a counter/gauge series, ``None`` if unrecorded."""
        family = self._families.get(name)
        if family is None:
            return None
        instrument = family.get(_freeze_labels(labels))
        return None if instrument is None else instrument.value

    # -- cross-process ---------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-able dump of every series (the wire unit of merging)."""
        entries: List[Dict[str, Any]] = []
        for kind, name, labels, instrument in self.series():
            entry = {"kind": kind, "name": name, "labels": labels}
            entry.update(instrument.state())
            entries.append(entry)
        return entries

    def merge(self, snapshot: List[Dict[str, Any]]) -> None:
        """Merge a :meth:`snapshot` by label set: counters add, gauges
        last-write-win, histograms combine buckets/count/sum/min/max."""
        for entry in snapshot:
            instrument = self._instrument(
                entry["kind"], entry["name"], dict(entry.get("labels") or {})
            )
            instrument.merge_state(entry)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()
            self._kinds.clear()


# ----------------------------------------------------------------------
# Process-wide registry and the enabled gate.
# ----------------------------------------------------------------------
_PROCESS_REGISTRY = MetricsRegistry()


def _env_truthy(value: Optional[str]) -> bool:
    return (value or "").strip().lower() in ("1", "true", "on", "yes")


_ENABLED = _env_truthy(os.environ.get(METRICS_ENV))


def metrics() -> MetricsRegistry:
    """The process-wide registry every layer records into."""
    return _PROCESS_REGISTRY


def metrics_enabled() -> bool:
    """Whether per-step experiment instrumentation should record."""
    return _ENABLED


def set_metrics_enabled(enabled: bool) -> None:
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def use_metrics(enabled: Optional[bool]):
    """Scoped :func:`set_metrics_enabled`; ``None`` leaves the gate as-is
    (that is what ``config.obs = None`` means: defer to env/CLI)."""
    if enabled is None:
        yield
        return
    previous = _ENABLED
    set_metrics_enabled(enabled)
    try:
        yield
    finally:
        set_metrics_enabled(previous)


def reset_metrics() -> None:
    """Drop every recorded series (test isolation; workers after a ship)."""
    _PROCESS_REGISTRY.reset()
