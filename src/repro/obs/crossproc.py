"""Cross-process telemetry collection: workers ship, the parent merges.

Pool workers record into their *own* process registry and tracer while
running a job; just before returning, the job function calls
:func:`collect_worker_telemetry`, which snapshots-and-resets the worker
registry (and drains the worker tracer) into a JSON-able dict that
rides home piggybacked on the existing job payload — no extra pipe, no
extra wire format.  The parent calls :func:`absorb_worker_telemetry`
on the shipped dict: metrics merge by label set into the parent
registry, spans file under a per-worker ``proc`` lane of the parent
tracer.  A fleet run therefore yields one coherent registry and one
coherent trace regardless of worker count.

Both functions are no-ops in the right places by construction:
``collect`` returns ``None`` unless this process *is* a pool worker
(the serial path and the parent's crash-fallback reruns execute the
same job functions in-process, and must not wipe the parent registry
mid-run), and ``absorb`` ignores ``None``/empty payloads.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.obs.metrics import metrics, reset_metrics
from repro.obs.trace import current_tracer

__all__ = ["collect_worker_telemetry", "absorb_worker_telemetry"]


def collect_worker_telemetry() -> Optional[Dict[str, Any]]:
    """Snapshot-and-reset this pool worker's telemetry for shipping.

    Returns ``None`` when this process is not a pool worker, or when
    there is nothing to ship.
    """
    from repro.experiments import pool as pool_module

    if not pool_module.IN_POOL_WORKER:
        return None
    snapshot = metrics().snapshot()
    if snapshot:
        reset_metrics()
    tracer = current_tracer()
    spans = tracer.drain() if tracer is not None else []
    if not snapshot and not spans:
        return None
    proc = tracer.proc if tracer is not None else f"worker-{os.getpid()}"
    return {"metrics": snapshot, "spans": spans, "proc": proc}


def absorb_worker_telemetry(payload: Optional[Dict[str, Any]]) -> None:
    """Merge a shipped telemetry dict into this process's registry/tracer."""
    if not payload:
        return
    snapshot = payload.get("metrics") or []
    if snapshot:
        metrics().merge(snapshot)
    spans = payload.get("spans") or []
    if spans:
        tracer = current_tracer()
        if tracer is not None:
            tracer.extend(spans, proc=payload.get("proc"))
