"""Unified observability: metrics registry, span tracer, exporters.

The single telemetry source for every runtime layer (docs/OBSERVABILITY.md):

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  counters/gauges/histograms with label sets, mergeable across
  processes, gated on hot paths by ``REPRO_METRICS`` / ``--metrics`` /
  ``config.obs``.
* :mod:`repro.obs.trace` — :func:`trace_span` nested spans with logical
  step/round clocks, exportable as JSONL or Chrome trace-event JSON.
* :mod:`repro.obs.exporters` — ``EXPORTERS`` registry (console table,
  jsonl, prometheus text).
* :mod:`repro.obs.crossproc` — workers snapshot-and-ship, the parent
  merges by label set.

Telemetry is observation only: enabling any of it is bitwise-invisible
to session/fleet/sweep fingerprints (tests/property/test_obs_identity.py).
"""

from repro.obs.crossproc import absorb_worker_telemetry, collect_worker_telemetry
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRICS_ENV,
    MetricsRegistry,
    metrics,
    metrics_enabled,
    reset_metrics,
    set_metrics_enabled,
    use_metrics,
)
from repro.obs.trace import (
    SpanTracer,
    TRACE_ENV,
    current_tracer,
    set_clock,
    set_tracer,
    trace_span,
    use_tracer,
)

# The documented metric inventory: every series name the instrumented
# layers record, with what it measures.  docs/OBSERVABILITY.md mirrors
# this table and tools/check_docs.py enforces agreement both directions.
METRIC_INVENTORY = {
    # Session stream loop (gated by metrics_enabled()).
    "session.steps": "stream steps completed, labelled by policy",
    "session.select_seconds": "per-step selection/scoring duration histogram",
    "session.train_seconds": "per-step training duration histogram",
    "session.probe_seconds": "probe evaluation duration histogram",
    "session.buffer_diversity": "latest contrast-buffer label diversity",
    # Fleet coordinator (per-round).
    "fleet.rounds": "federated rounds completed",
    "fleet.sampled_k": "per-round sampled cast size histogram",
    "fleet.stragglers": "device reports past the round deadline",
    "fleet.dropouts": "sampled devices that dropped the round",
    "fleet.crashes": "worker crashes during device fan-out",
    "fleet.pending_depth": "straggler reports awaiting maturation",
    "fleet.bytes_sent": "broadcast payload bytes, labelled by wire format",
    "fleet.compression_ratio": "raw state bytes over wire bytes, by wire format",
    "fleet.round_seconds": "wall-clock per fleet round",
    # Parallel job engine (multi-seed / scenario sweeps / fleet fan-out).
    "jobs.compute_seconds": "in-worker compute seconds, labelled by engine",
    "jobs.transport_seconds": "payload transport seconds, labelled by engine",
    "jobs.wall_seconds": "end-to-end job batch seconds, labelled by engine",
    "jobs.retries": "jobs re-run serially after a worker crash or wire error",
    # Worker pool (process lifecycle).
    "pool.jobs": "jobs dispatched, labelled by worker slot (sticky routing)",
    "pool.respawns": "worker processes respawned after a crash",
    "pool.crashes": "jobs lost to a worker crash",
    # Wire formats.
    "wire.shm_bytes": "bytes staged through shared-memory segments",
    # Scoring service.
    "serve.decisions": "scoring decisions resolved, labelled by status",
    "serve.errors": "failed requests (process-lifetime; survives restarts)",
    "serve.batches": "micro-batches executed",
    "serve.batch_size": "requests per micro-batch histogram",
    "serve.queue_depth": "request queue depth at batch formation",
    "serve.cache_hits": "embedding-cache hits",
    "serve.cache_misses": "embedding-cache misses",
    "serve.forwarded": "samples forwarded to the model (cache misses scored)",
    "serve.latency_ms": "per-request latency histogram (p50/p99)",
}


def metric_inventory():
    """Copy of :data:`METRIC_INVENTORY` (name -> description)."""
    return dict(METRIC_INVENTORY)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_ENV",
    "METRIC_INVENTORY",
    "SpanTracer",
    "TRACE_ENV",
    "absorb_worker_telemetry",
    "collect_worker_telemetry",
    "current_tracer",
    "metric_inventory",
    "metrics",
    "metrics_enabled",
    "reset_metrics",
    "set_clock",
    "set_metrics_enabled",
    "set_tracer",
    "trace_span",
    "use_metrics",
    "use_tracer",
]
