"""Span tracing with logical clocks, exportable as JSONL or Chrome traces.

A :class:`SpanTracer` records nested wall-clock spans (name, duration,
attributes, parent) stamped with whatever *logical* clocks the runtime
has advanced — Session step indices, fleet round indices — via
:meth:`SpanTracer.set_clock`.  Logical clocks are what make a trace
legible across processes: worker spans from round 3 line up with the
parent's round-3 span even though their wall clocks never met.

Instrumented code never holds a tracer; it calls the module-level
:func:`trace_span` context manager, which records into the active
tracer or costs a single ``None`` check when tracing is off.  Parents
install a tracer with :func:`use_tracer` (the CLI's ``--trace-out``
does); pool workers auto-install one when the ``REPRO_TRACE`` env var
is set, and their spans ride home with the metrics piggyback where
:meth:`SpanTracer.extend` files them under a per-worker ``proc`` lane.

Exports:

* :meth:`SpanTracer.to_jsonl` — one JSON object per span, grep-able.
* :meth:`SpanTracer.to_chrome` — Chrome trace-event JSON (complete
  ``"ph": "X"`` events, microsecond timestamps, one pid lane per
  process); load it at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "SpanTracer",
    "TRACE_ENV",
    "trace_span",
    "use_tracer",
    "current_tracer",
    "set_tracer",
    "set_clock",
]

TRACE_ENV = "REPRO_TRACE"


class SpanTracer:
    """Collects finished spans as plain dicts (JSON-able by construction)."""

    def __init__(self, proc: str = "main") -> None:
        self.proc = proc
        self.spans: List[Dict[str, Any]] = []
        self._origin = time.perf_counter()
        self._stack: List[int] = []  # span ids of open ancestors
        self._clocks: Dict[str, int] = {}
        self._next_id = 1

    # -- logical clocks --------------------------------------------------
    def set_clock(self, **clocks: int) -> None:
        """Advance logical clocks (``step=1024``, ``round=3``); every span
        opened afterwards carries the current reading."""
        for name, value in clocks.items():
            self._clocks[name] = int(value)

    # -- recording -------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any):
        span_id = self._next_id
        self._next_id += 1
        start = time.perf_counter()
        entry: Dict[str, Any] = {
            "name": name,
            "proc": self.proc,
            "span_id": span_id,
            "parent_id": self._stack[-1] if self._stack else None,
            "start_s": start - self._origin,
            "clocks": dict(self._clocks),
        }
        if attrs:
            entry["attrs"] = {k: v for k, v in attrs.items()}
        self._stack.append(span_id)
        try:
            yield entry
        finally:
            self._stack.pop()
            entry["duration_s"] = time.perf_counter() - start
            self.spans.append(entry)

    def extend(self, spans: Iterable[Dict[str, Any]], proc: Optional[str] = None) -> None:
        """File spans from another process under their own ``proc`` lane.

        Span ids are re-based so they cannot collide with local ids;
        parent links inside the shipped batch are preserved.
        """
        batch = [dict(span) for span in spans]
        if not batch:
            return
        offset = self._next_id
        for span in batch:
            span["span_id"] = int(span.get("span_id", 0)) + offset
            if span.get("parent_id") is not None:
                span["parent_id"] = int(span["parent_id"]) + offset
            if proc is not None:
                span["proc"] = proc
            self.spans.append(span)
        self._next_id = offset + max(int(s["span_id"]) for s in batch) + 1

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear every finished span (the cross-process unit)."""
        spans, self.spans = self.spans, []
        return spans

    # -- exports ---------------------------------------------------------
    def to_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for span in self.spans:
                fh.write(json.dumps(span, sort_keys=True, default=str))
                fh.write("\n")

    def to_chrome(self, path: str) -> None:
        """Chrome trace-event format: one complete event per span, one
        pid lane per ``proc`` (with a process_name metadata event)."""
        procs: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        for span in self.spans:
            proc = str(span.get("proc", "main"))
            pid = procs.setdefault(proc, len(procs) + 1)
            args = dict(span.get("attrs") or {})
            args.update(span.get("clocks") or {})
            events.append(
                {
                    "name": span["name"],
                    "ph": "X",
                    "pid": pid,
                    "tid": 1,
                    "ts": round(float(span["start_s"]) * 1e6, 3),
                    "dur": round(float(span.get("duration_s", 0.0)) * 1e6, 3),
                    "args": args,
                }
            )
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": proc},
            }
            for proc, pid in procs.items()
        ]
        with open(path, "w") as fh:
            json.dump({"traceEvents": meta + events}, fh, default=str)
            fh.write("\n")


# ----------------------------------------------------------------------
# Module-level active tracer (what instrumented code talks to).
# ----------------------------------------------------------------------
_ACTIVE: Optional[SpanTracer] = None


def current_tracer() -> Optional[SpanTracer]:
    return _ACTIVE


def set_tracer(tracer: Optional[SpanTracer]) -> None:
    global _ACTIVE
    _ACTIVE = tracer


@contextmanager
def use_tracer(tracer: Optional[SpanTracer]):
    """Install ``tracer`` as the active tracer for the enclosed block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


@contextmanager
def _null_span():
    yield None


def trace_span(name: str, **attrs: Any):
    """Record a span on the active tracer, or do nothing when tracing is
    off (one ``None`` check — safe on hot paths)."""
    tracer = _ACTIVE
    if tracer is None:
        return _null_span()
    return tracer.span(name, **attrs)


def set_clock(**clocks: int) -> None:
    """Advance the active tracer's logical clocks (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.set_clock(**clocks)


def ensure_worker_tracer() -> Optional[SpanTracer]:
    """Install this pool worker's own tracer (idempotent per process).

    Tracing is wanted when ``REPRO_TRACE`` is set *or* the worker
    inherited an active tracer (fork start methods copy the parent's
    module state).  Either way the worker gets a *fresh* per-process
    tracer: recording into a fork-inherited parent tracer would ship
    the parent's pre-fork spans home as duplicates."""
    global _ACTIVE
    mine = f"worker-{os.getpid()}"
    if _ACTIVE is not None and _ACTIVE.proc == mine:
        return _ACTIVE
    if _ACTIVE is not None or os.environ.get(TRACE_ENV):
        _ACTIVE = SpanTracer(proc=mine)
    return _ACTIVE
