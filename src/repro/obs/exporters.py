"""Metric exporters: console table, JSON-lines, prometheus text.

Registered in ``repro.registry.EXPORTERS`` under the same decorator
idiom as backends/scenarios/aggregators, so ``--list`` shows them and
``EXPORTERS.create("console")`` builds one.  Every exporter is a pure
function of the registry — ``render(registry) -> str`` — and the CLI
decides where the text goes (stdout, or the ``--trace-out`` sibling
file).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.obs.metrics import Histogram, MetricsRegistry, bucket_bounds
from repro.registry import register_exporter
from repro.utils.tables import format_table

__all__ = ["Exporter", "ConsoleExporter", "JsonlExporter", "PrometheusExporter"]


class Exporter:
    """Render a :class:`MetricsRegistry` to text."""

    name = "exporter"

    def render(self, registry: MetricsRegistry) -> str:
        raise NotImplementedError

    def export(self, registry: MetricsRegistry, path: str) -> None:
        """Write :meth:`render` output to ``path`` (trailing newline)."""
        with open(path, "w") as fh:
            fh.write(self.render(registry))
            fh.write("\n")


def _format_labels(labels: Dict[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _format_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


@register_exporter("console", label="Console table")
class ConsoleExporter(Exporter):
    """Aligned plain-text table, one row per series; histograms show
    count/mean/p50/p99/max so latency knees are visible at a glance."""

    name = "console"

    def render(self, registry: MetricsRegistry) -> str:
        rows = []
        for kind, name, labels, instrument in registry.series():
            if isinstance(instrument, Histogram):
                value = (
                    f"count={instrument.count} mean={instrument.mean:.6g} "
                    f"p50={instrument.percentile(50):.6g} "
                    f"p99={instrument.percentile(99):.6g} "
                    f"max={instrument.max:.6g}"
                )
            else:
                value = _format_value(instrument.value)
            rows.append([name, _format_labels(labels), kind, value])
        if not rows:
            return "(no metrics recorded)"
        return format_table(["metric", "labels", "kind", "value"], rows)


@register_exporter("jsonl", label="JSON lines")
class JsonlExporter(Exporter):
    """One JSON object per series — the same entries
    :meth:`MetricsRegistry.snapshot` ships between processes."""

    name = "jsonl"

    def render(self, registry: MetricsRegistry) -> str:
        return "\n".join(
            json.dumps(entry, sort_keys=True, default=str)
            for entry in registry.snapshot()
        )


@register_exporter("prometheus", label="Prometheus text", aliases=("prom",))
class PrometheusExporter(Exporter):
    """Prometheus text exposition: ``_total`` counters, plain gauges,
    and cumulative ``_bucket``/``_sum``/``_count`` histogram series on
    the registry's exponential grid."""

    name = "prometheus"

    @staticmethod
    def _metric_name(name: str) -> str:
        return name.replace(".", "_").replace("-", "_")

    @staticmethod
    def _label_str(labels: Dict[str, str], extra: str = "") -> str:
        parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render(self, registry: MetricsRegistry) -> str:
        lines = []
        typed = set()
        for kind, name, labels, instrument in registry.series():
            metric = self._metric_name(name)
            if kind == "counter":
                metric += "_total"
            if metric not in typed:
                typed.add(metric)
                lines.append(f"# TYPE {metric} {kind}")
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{metric}{self._label_str(labels)} "
                    f"{_format_value(instrument.value)}"
                )
                continue
            cumulative = 0
            for index in sorted(instrument._buckets):
                cumulative += instrument._buckets[index]
                _, high = bucket_bounds(index)
                le = 'le="' + format(high, ".6g") + '"'
                lines.append(
                    f"{metric}_bucket{self._label_str(labels, le)} {cumulative}"
                )
            inf_le = 'le="+Inf"'
            lines.append(
                f"{metric}_bucket{self._label_str(labels, inf_le)} "
                f"{instrument.count}"
            )
            lines.append(
                f"{metric}_sum{self._label_str(labels)} "
                f"{_format_value(instrument.sum)}"
            )
            lines.append(
                f"{metric}_count{self._label_str(labels)} {instrument.count}"
            )
        return "\n".join(lines) if lines else "# (no metrics recorded)"
