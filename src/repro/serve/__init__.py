"""The serve engine: an async micro-batching scoring service.

The production front door of the selective-contrast scorer
(docs/SERVE.md, DESIGN.md §11).  Requests — one sample + device id —
accumulate in a bounded queue; a batcher fuses them into batched
forwards on a size-or-deadline trigger and answers each with a
selection :class:`Decision`.  Around that core: a content-addressed
score cache with publish-driven invalidation
(:class:`EmbeddingCache`), per-device model versioning fed by fleet
broadcasts (:class:`ModelRegistry`), registered admission-control
policies (``SERVE_POLICIES``: block / shed / degrade), and an optional
JSON-lines TCP transport (:func:`serve_tcp` / :class:`TcpClient`).

>>> models = ModelRegistry()
>>> models.publish_session(session)
1
>>> async with ScoringServer(scorer, models, cache=EmbeddingCache()) as server:
...     decisions = await InprocClient(server, "device-0").score_stream(samples)
"""

from repro.serve.cache import EmbeddingCache
from repro.serve.models import ModelRegistry
from repro.serve.net import TcpClient, serve_tcp
from repro.serve.server import Decision, InprocClient, ScoreRequest, ScoringServer

__all__ = [
    "Decision",
    "EmbeddingCache",
    "InprocClient",
    "ModelRegistry",
    "ScoreRequest",
    "ScoringServer",
    "TcpClient",
    "serve_tcp",
]
