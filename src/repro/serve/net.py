"""JSON-lines TCP transport for the scoring server.

A thin network skin over a running :class:`~repro.serve.ScoringServer`:
each connection carries newline-delimited JSON requests and responses,
so any language with sockets and JSON can talk to the service (the
``repro serve --port`` mode).  Arrays travel as
``{"dtype", "shape", "data"}`` with base64-encoded raw bytes — the same
wire idiom as the fleet checkpoint codec.

Operations (``{"op": ...}`` per line):

* ``score`` — ``{"op": "score", "sample": <array>, "device_id": ...,
  "model_version": ..., "deadline_ms": ...}`` (all but ``sample``
  optional) → ``{"ok": true, "decision": <Decision.to_dict()>}``.
* ``stats`` — → ``{"ok": true, "stats": <ScoringServer.stats()>}``.
* ``ping`` — liveness → ``{"ok": true, "pong": true}``.

Errors come back as ``{"ok": false, "error": "..."}`` on the same
line; malformed framing (invalid JSON, or a line that is not a JSON
object) closes the connection.  Concurrent requests on
one connection are served in submission order per line read, but each
``score`` is awaited independently, so several connections (or
pipelined lines) micro-batch together exactly like in-process callers.
"""

from __future__ import annotations

import asyncio
import base64
import json
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.serve.server import Decision, ScoringServer

__all__ = ["serve_tcp", "TcpClient"]

_MAX_LINE = 64 * 1024 * 1024  # generous: one CHW frame per line


def _encode_array(array: np.ndarray) -> Dict[str, Any]:
    array = np.ascontiguousarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _decode_array(payload: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.dtype(payload["dtype"])).reshape(
        payload["shape"]
    )


async def _handle_line(server: ScoringServer, message: Dict[str, Any]) -> Dict[str, Any]:
    op = message.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {"ok": True, "stats": server.stats()}
    if op == "score":
        decision = await server.submit(
            _decode_array(message["sample"]),
            device_id=message.get("device_id", "tcp"),
            model_version=message.get("model_version"),
            deadline_ms=message.get("deadline_ms"),
        )
        return {"ok": True, "decision": decision.to_dict()}
    return {"ok": False, "error": f"unknown op {op!r} (score/stats/ping)"}


async def serve_tcp(
    server: ScoringServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Expose ``server`` over JSON-lines TCP; returns the asyncio server.

    ``port=0`` binds an ephemeral port — read the bound address from
    ``returned.sockets[0].getsockname()``.  The scoring server must
    already be started; closing the returned asyncio server does not
    stop it.
    """

    async def safe_handle(message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            return await _handle_line(server, message)
        except Exception as exc:  # noqa: BLE001 - answer on the wire, keep serving
            return {"ok": False, "error": str(exc)}

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Each line is dispatched as its own task so pipelined score
        # requests reach the batcher together; responses are written
        # back in line order.
        pending: "asyncio.Queue[Optional[asyncio.Task]]" = asyncio.Queue()

        async def respond() -> None:
            while True:
                task = await pending.get()
                if task is None:
                    break
                response = await task
                try:
                    writer.write(json.dumps(response).encode("utf-8") + b"\n")
                    await writer.drain()
                except (ConnectionError, OSError):  # pragma: no cover - peer gone
                    break

        loop = asyncio.get_running_loop()
        responder = loop.create_task(respond())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break  # malformed framing: drop the connection
                if not isinstance(message, dict):
                    break  # valid JSON, but not a request object: same deal
                pending.put_nowait(loop.create_task(safe_handle(message)))
        finally:
            pending.put_nowait(None)
            try:
                await responder
            finally:
                # close() runs even if the responder raised, so the
                # connection is never wedged open; no wait_closed() —
                # the loop tears the transport down and awaiting here
                # races loop shutdown and only adds noise.
                writer.close()

    return await asyncio.start_server(handle, host, port, limit=_MAX_LINE)


class TcpClient:
    """A JSON-lines client for :func:`serve_tcp` (asyncio, one connection).

    Usage::

        client = await TcpClient.connect(host, port)
        decision = await client.score(sample, device_id="dev-0")
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "TcpClient":
        reader, writer = await asyncio.open_connection(host, port, limit=_MAX_LINE)
        return cls(reader, writer)

    async def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(json.dumps(message).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise RuntimeError(f"server error: {response.get('error', 'unknown')}")
        return response

    async def ping(self) -> bool:
        return bool((await self._roundtrip({"op": "ping"}))["pong"])

    async def stats(self) -> Dict[str, Any]:
        return (await self._roundtrip({"op": "stats"}))["stats"]

    async def score(
        self,
        sample: np.ndarray,
        device_id: str = "tcp",
        model_version: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Decision:
        message: Dict[str, Any] = {
            "op": "score",
            "sample": _encode_array(np.asarray(sample)),
            "device_id": device_id,
        }
        if model_version is not None:
            message["model_version"] = model_version
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return Decision.from_dict((await self._roundtrip(message))["decision"])

    async def score_stream(
        self,
        samples: Sequence[np.ndarray],
        device_id: str = "tcp",
        model_version: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[Decision]:
        """Pipeline every sample on this connection (server micro-batches).

        Lines are written back-to-back before the first response is
        read, so the server's batcher sees them together.
        """
        for sample in samples:
            message: Dict[str, Any] = {
                "op": "score",
                "sample": _encode_array(np.asarray(sample)),
                "device_id": device_id,
            }
            if model_version is not None:
                message["model_version"] = model_version
            if deadline_ms is not None:
                message["deadline_ms"] = deadline_ms
            self._writer.write(json.dumps(message).encode("utf-8") + b"\n")
        await self._writer.drain()
        decisions: List[Decision] = []
        for _ in samples:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection mid-stream")
            response = json.loads(line)
            if not response.get("ok"):
                raise RuntimeError(f"server error: {response.get('error', 'unknown')}")
            decisions.append(Decision.from_dict(response["decision"]))
        return decisions

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
