"""The embedding/score cache of the serve layer.

Buffer members get re-scored constantly (the replacement policy
re-scores every surviving entry each iteration, and devices re-submit
the same frames), so the scoring service keys computed scores by
*content digest* (:func:`repro.core.scoring.content_hash`) and, on the
server path, by model version — a hit skips the whole forward.

Correctness contract (tested, and enforced by the perf suite's
``--check``):

* a hit returns the **exact float64** stored by the miss that populated
  the entry — cache-hit decisions are bitwise-identical to cache-miss
  decisions for the same (content digest, model version);
* entries are version-qualified on the server path, so a stale entry
  can never answer for a newer model; on every model publish
  (:meth:`repro.serve.ModelRegistry.publish`, which fleet broadcasts
  drive) the server drops every entry whose version is no longer
  retained (:meth:`EmbeddingCache.invalidate_stale`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterable, Optional

__all__ = ["EmbeddingCache"]


class EmbeddingCache:
    """A bounded LRU mapping cache keys to float64 scores.

    Keys are arbitrary hashables: the in-library scoring hook
    (:meth:`repro.core.scoring.ContrastScorer.with_score_cache`) uses
    bare content digests, the scoring server uses
    ``(content_digest, model_version)`` tuples.  Single-event-loop /
    single-thread use; no locking.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted first.  Must be >= 1.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- the store ------------------------------------------------------
    def get(self, key: Hashable) -> Optional[float]:
        """The cached score, or None; a hit refreshes LRU recency."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, score: float) -> None:
        """Store ``score`` (as exact float64) under ``key``."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = float(score)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        # Membership probe only: no stats, no recency update.
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry (counters survive; see :meth:`stats`)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

    # -- invalidation ---------------------------------------------------
    def invalidate_stale(self, live_versions: Iterable[Any]) -> int:
        """Drop every version-qualified entry not at a live version.

        An entry is version-qualified when its key is a
        ``(digest, version)`` tuple; bare-digest entries (the in-library
        hook's keys) are always dropped, since they are only meaningful
        for one frozen model.  Returns the number of entries removed.
        The server calls this on every model publish, so entries of
        pruned versions can never serve again.
        """
        live = set(live_versions)
        stale = [
            key
            for key in self._entries
            if not (isinstance(key, tuple) and len(key) == 2 and key[1] in live)
        ]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters since construction (clear/invalidate do not reset)."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EmbeddingCache(size={len(self._entries)}, "
            f"capacity={self.capacity}, hits={self.hits}, misses={self.misses})"
        )
