"""Model versioning for the scoring service.

A :class:`ModelRegistry` holds immutable snapshots of "the model" —
the ``encoder/*`` + ``projector/*`` arrays of a
:meth:`repro.session.Session.state_dict` learner payload, the same
slice the fleet engine aggregates and broadcasts
(:data:`repro.fleet.MODEL_PREFIXES`) — under monotonically increasing
integer versions:

* :meth:`publish` snapshots a new version and advances the *current*
  pointer (what unpinned devices are served with);
* :meth:`pin` pins a device id to a specific retained version (canary
  cohorts, staged rollouts); :meth:`resolve` maps a device id to the
  version it should be scored against;
* :meth:`attach` subscribes the registry to a
  :class:`~repro.fleet.coordinator.FleetCoordinator`: every
  synchronizing broadcast publishes the new global model, so the
  serving tier always scores against what the fleet just agreed on —
  and, through :meth:`on_publish` subscribers, the serving cache drops
  every stale entry at the same moment (docs/SERVE.md).

Snapshots are defensive copies both ways: published arrays are copied
in, and mutating a served model state never corrupts the registry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ModelRegistry"]


def _model_prefixes() -> Tuple[str, ...]:
    # Imported lazily: repro.fleet.coordinator pulls in the experiments
    # package, which imports repro.serve — a top-level import here
    # would cycle when repro.serve is imported first.
    from repro.fleet.coordinator import MODEL_PREFIXES

    return MODEL_PREFIXES


class ModelRegistry:
    """Versioned model snapshots with device pinning.

    Parameters
    ----------
    keep:
        Retain at most this many versions (None = all).  When a publish
        overflows the limit, the oldest versions that are neither
        current nor pinned are pruned; :meth:`versions` shrinks and
        subscribers (the serving cache) invalidate accordingly.
    """

    def __init__(self, keep: Optional[int] = None) -> None:
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1 or None, got {keep}")
        self.keep = keep
        self._versions: Dict[int, Dict[str, np.ndarray]] = {}
        self._sources: Dict[int, str] = {}
        self._current: Optional[int] = None
        self._next = 1
        self._pins: Dict[str, int] = {}
        self._on_publish: List[Callable[[int, "ModelRegistry"], None]] = []

    # -- publishing -----------------------------------------------------
    def publish(
        self, model_state: Dict[str, np.ndarray], *, source: str = ""
    ) -> int:
        """Snapshot ``model_state`` as the new current version.

        ``model_state`` maps ``encoder/...`` / ``projector/...`` keys to
        arrays (the fleet broadcast payload shape); every key must carry
        one of those prefixes and at least one key is required.  Arrays
        are copied.  Returns the new version number and fires every
        :meth:`on_publish` subscriber after pruning, so subscribers see
        the post-publish retained-version set.
        """
        if not model_state:
            raise ValueError("model_state is empty: nothing to publish")
        prefixes = _model_prefixes()
        for key in model_state:
            if not key.startswith(prefixes):
                raise ValueError(
                    f"model_state key {key!r} lacks the model prefixes "
                    f"{'/'.join(prefixes)} — pass the encoder/projector "
                    "slice only (see publish_session)"
                )
        version = self._next
        self._next += 1
        self._versions[version] = {
            key: np.asarray(value).copy() for key, value in model_state.items()
        }
        self._sources[version] = source
        self._current = version
        self._prune()
        for fn in self._on_publish:
            fn(version, self)
        return version

    def publish_session(self, session: Any, *, source: str = "session") -> int:
        """Publish the model slice of a live :class:`~repro.session.Session`.

        Filters ``session.state_dict()["learner"]`` down to the
        ``encoder/*`` + ``projector/*`` arrays — optimizer moments,
        buffer contents, and counters stay out of the serving tier.
        """
        learner = session.state_dict()["learner"]
        prefixes = _model_prefixes()
        return self.publish(
            {
                key: value
                for key, value in learner.items()
                if key.startswith(prefixes)
            },
            source=source,
        )

    def attach(self, coordinator: Any, *, source: str = "fleet-broadcast") -> None:
        """Publish every synchronizing broadcast of ``coordinator``.

        ``coordinator`` needs only an ``on_broadcast(fn)`` hook calling
        ``fn(model_state)`` after each broadcast
        (:class:`~repro.fleet.coordinator.FleetCoordinator` provides
        it).  Each broadcast becomes a new version, advancing what
        unpinned devices are served with and invalidating stale cache
        entries through :meth:`on_publish` subscribers.
        """
        coordinator.on_broadcast(
            lambda model_state: self.publish(model_state, source=source)
        )

    def _prune(self) -> None:
        if self.keep is None:
            return
        protected = set(self._pins.values())
        if self._current is not None:
            protected.add(self._current)
        for version in sorted(self._versions):
            if len(self._versions) <= self.keep:
                break
            if version in protected:
                continue
            del self._versions[version]
            del self._sources[version]

    # -- lookup ---------------------------------------------------------
    @property
    def current_version(self) -> Optional[int]:
        """The version unpinned devices resolve to (None pre-publish)."""
        return self._current

    def versions(self) -> List[int]:
        """Sorted retained version numbers."""
        return sorted(self._versions)

    def source(self, version: int) -> str:
        """The ``source`` tag recorded when ``version`` was published."""
        self.require(version)
        return self._sources[version]

    def require(self, version: int) -> int:
        """Validate that ``version`` is retained (raises KeyError)."""
        if version not in self._versions:
            raise KeyError(
                f"model version {version} is not retained "
                f"(retained: {self.versions() or '(none)'})"
            )
        return version

    def get(self, version: int) -> Dict[str, np.ndarray]:
        """A copy of the model arrays of a retained ``version``."""
        self.require(version)
        return {key: value.copy() for key, value in self._versions[version].items()}

    def state_view(self, version: int) -> Dict[str, np.ndarray]:
        """The stored arrays of ``version`` without copying.

        The server's hot activation path; treat the arrays as
        read-only (``Module.load_state_dict`` copies on load).
        """
        self.require(version)
        return self._versions[version]

    # -- device pinning -------------------------------------------------
    def pin(self, device_id: str, version: int) -> None:
        """Pin ``device_id`` to a retained ``version`` (staged rollout)."""
        self.require(version)
        self._pins[str(device_id)] = version

    def unpin(self, device_id: str) -> None:
        """Return ``device_id`` to the current-version track (idempotent)."""
        self._pins.pop(str(device_id), None)

    def pins(self) -> Dict[str, int]:
        """Device id -> pinned version (a copy)."""
        return dict(self._pins)

    def resolve(self, device_id: str) -> int:
        """The version ``device_id`` should be scored against."""
        pinned = self._pins.get(str(device_id))
        if pinned is not None:
            return pinned
        if self._current is None:
            raise RuntimeError(
                "no model version has been published yet: publish one "
                "(ModelRegistry.publish / publish_session) before serving"
            )
        return self._current

    # -- subscriptions --------------------------------------------------
    def on_publish(self, fn: Callable[[int, "ModelRegistry"], None]) -> None:
        """Register ``fn(version, registry)`` to run after every publish."""
        self._on_publish.append(fn)

    def __len__(self) -> int:
        return len(self._versions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelRegistry(current={self._current}, "
            f"versions={self.versions()}, pins={self._pins})"
        )
