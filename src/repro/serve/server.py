"""The asyncio micro-batching scoring server.

The production front door of the scorer (DESIGN.md §11): requests —
one sample + device id (+ optional pinned model version) — accumulate
in a bounded queue, a batcher drains them on a size-or-deadline trigger
(``max_batch`` / ``max_wait_ms``), fuses them into single batched
forwards through the existing :class:`~repro.core.scoring.ContrastScorer`
batched path, and answers each request with a selection
:class:`Decision`.

Around the batching core:

* **embedding/score cache** — an optional
  :class:`~repro.serve.cache.EmbeddingCache` keyed by
  ``(content digest, model version)``; a hit skips the forward and
  returns the exact float64 the populating miss stored (bitwise
  identity, tested).  Every model publish invalidates entries at
  versions no longer retained, so a stale entry can never serve.
* **model versioning** — a :class:`~repro.serve.models.ModelRegistry`
  resolves each request to a version (explicit > device pin > current)
  and the server loads that snapshot into its scorer's modules lazily,
  grouping each micro-batch by version so a mixed batch loads each
  version at most once.
* **admission control** — a registered serve policy
  (:mod:`repro.serve.policies`; ``config.serve`` / ``--serve-policy``)
  decides what happens when the queue is full (block / shed / degrade)
  and when a request's per-request deadline lapses before its batch
  runs.

Determinism contract: decisions are a pure function of (request
content, resolved model version) — plus, for the last float64 bits, the
composition of the forward batch the content first rode in.  Replaying
the same request sequence through an identically configured fresh
server reproduces the same batches and therefore bitwise-identical
decisions; the perf suite's ``--check`` enforces exactly that replay
property, and the cache extends it across repeats by construction.

The scoring forward runs *in* the event loop (it is the whole point of
the process; overlapping compute with intake only adds jitter on one
CPU).  The server owns its scorer's encoder/projector modules — version
activation overwrites their arrays in place, so hand the server
dedicated components (``build_components``) rather than modules a live
training Session is still updating.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.scoring import ContrastScorer, content_hash
from repro.obs import metrics as process_metrics
from repro.obs import metrics_enabled
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import trace_span
from repro.registry import SERVE_POLICIES, UnknownComponentError
from repro.serve.cache import EmbeddingCache
from repro.serve.models import ModelRegistry

__all__ = ["Decision", "ScoreRequest", "ScoringServer", "InprocClient"]

#: Decision.status values (docs/SERVE.md): ``ok`` carries a fresh or
#: cached score; the rest are admission-control outcomes.
DECISION_STATUSES = ("ok", "shed", "degraded", "expired")


@dataclass(frozen=True)
class Decision:
    """The per-request answer of the scoring service.

    ``score``/``selected`` carry the contrast score and the threshold
    verdict for ``ok`` (and cache-served ``degraded``) decisions;
    shed/expired and fail-open degraded decisions carry ``score=None``.
    ``latency_ms`` and ``batch_size`` describe *this* run's execution
    and are excluded from :meth:`fingerprint`.
    """

    device_id: str
    model_version: Optional[int]
    score: Optional[float]
    selected: bool
    status: str
    cache_hit: bool = False
    batch_size: int = 0
    latency_ms: float = 0.0

    def fingerprint(self) -> tuple:
        """The deterministic fields: equal across replays of the same
        request sequence against the same model versions."""
        return (
            self.device_id,
            self.model_version,
            self.score,
            self.selected,
            self.status,
            self.cache_hit,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON representation (the TCP wire format)."""
        return {
            "device_id": self.device_id,
            "model_version": self.model_version,
            "score": self.score,
            "selected": self.selected,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "batch_size": self.batch_size,
            "latency_ms": self.latency_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Decision":
        return cls(
            device_id=data["device_id"],
            model_version=data["model_version"],
            score=data["score"],
            selected=bool(data["selected"]),
            status=data["status"],
            cache_hit=bool(data["cache_hit"]),
            batch_size=int(data["batch_size"]),
            latency_ms=float(data["latency_ms"]),
        )


@dataclass
class ScoreRequest:
    """One in-flight request (internal; clients pass plain arguments)."""

    sample: np.ndarray
    device_id: str
    model_version: int
    deadline_ms: Optional[float]
    enqueued_at: float
    future: "asyncio.Future[Decision]" = field(repr=False, default=None)  # type: ignore[assignment]

    def expired(self, now: float) -> bool:
        return (
            self.deadline_ms is not None
            and (now - self.enqueued_at) * 1000.0 > self.deadline_ms
        )


_SENTINEL = object()


class ScoringServer:
    """Micro-batching scoring service over one scorer + model registry.

    Parameters
    ----------
    scorer:
        The :class:`ContrastScorer` whose encoder/projector the server
        owns (version activation overwrites their arrays in place).
    models:
        The :class:`ModelRegistry` of published versions; at least one
        version must be published before the first ``submit``.
    max_batch:
        Micro-batch size cap — the batcher never fuses more requests
        than this into one forward.
    max_wait_ms:
        Batching deadline: after the first request of a batch arrives,
        the batcher waits at most this long for stragglers before
        executing a partial batch.  0 disables waiting (a batch is
        whatever is already queued).
    queue_depth:
        Bound on queued (admitted, unexecuted) requests.  A full queue
        invokes the admission policy.
    policy:
        Registered serve policy name/alias (``block`` / ``shed`` /
        ``degrade``; :mod:`repro.serve.policies`).
    threshold:
        Selection rule: ``selected = score >= threshold`` (scores lie
        in [0, 2]; high score = the encoder has not learned the sample
        yet = worth keeping).
    cache:
        Optional :class:`EmbeddingCache`; enables the
        ``(digest, version)`` score cache and its publish-time
        invalidation.
    """

    def __init__(
        self,
        scorer: ContrastScorer,
        models: ModelRegistry,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        queue_depth: int = 256,
        policy: str = "block",
        threshold: float = 1.0,
        cache: Optional[EmbeddingCache] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        try:
            entry = SERVE_POLICIES.get(policy)
        except UnknownComponentError as exc:
            raise ValueError(f"policy: {exc}") from exc
        self.scorer = scorer
        self.models = models
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.queue_depth = int(queue_depth)
        self.policy_name = entry.name
        self.policy = entry.factory()
        self.threshold = float(threshold)
        self.cache = cache
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._closed = False
        self._loaded_version: Optional[int] = None
        # Telemetry: the per-instance registry is the single source the
        # old ad-hoc counters collapsed into — stats() is a thin view
        # over it.  When process metrics are enabled (REPRO_METRICS /
        # --metrics / config.obs), every recording mirrors into the
        # process-global registry too, so a serve run shows up in the
        # same exporters as everything else.  ``serve.errors`` always
        # hits the process-global registry as well: unlike the old
        # instance attribute, the error count stats() reports survives
        # tearing the server down and building a new one in-process.
        self.metrics = MetricsRegistry()
        models.on_publish(self._on_model_publish)

    def _registries(self) -> Sequence[MetricsRegistry]:
        """Where hot-path recordings land (instance + process when on)."""
        if metrics_enabled():
            return (self.metrics, process_metrics())
        return (self.metrics,)

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ScoringServer":
        """Start the batcher task (idempotent; requires a running loop)."""
        if self._batcher is None:
            self._queue = asyncio.Queue(maxsize=self.queue_depth)
            self._closed = False
            self._batcher = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        """Drain every admitted request, then stop the batcher.

        Admissions racing with ``stop`` fail fast (``RuntimeError``)
        instead of landing behind the sentinel and awaiting forever.
        """
        if self._batcher is None:
            return
        self._closed = True
        await self._queue.put(_SENTINEL)
        await self._batcher
        self._batcher = None
        self._queue = None

    async def __aenter__(self) -> "ScoringServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- intake ---------------------------------------------------------
    async def submit(
        self,
        sample: np.ndarray,
        device_id: str = "anon",
        model_version: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Decision:
        """Score one CHW sample; resolves when its micro-batch executes.

        The model version is resolved *now* (explicit argument > device
        pin > current), so a publish that lands after admission does not
        retroactively change what this request is scored against — with
        one exception: if a racing publish *prunes* the resolved version
        before the batch executes, the request re-resolves (pin >
        current) at execution instead of failing.
        """
        request = self._admit(sample, device_id, model_version, deadline_ms)
        fallback = await self._enqueue(request)
        if fallback is not None:
            return fallback
        return await request.future

    async def submit_many(
        self,
        samples: Sequence[np.ndarray],
        device_id: str = "anon",
        model_version: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[Decision]:
        """Submit a batch of samples concurrently (micro-batched together).

        The bulk intake path: one coroutine admits every sample in
        order (no per-request task), so a burst pays the event loop
        once per *batch* rather than once per request.  Admission
        semantics are identical to N :meth:`submit` calls — per-request
        version resolution, and the admission policy consulted whenever
        the queue is full.
        """
        outcomes: List[Any] = []
        for sample in samples:
            request = self._admit(sample, device_id, model_version, deadline_ms)
            fallback = await self._enqueue(request)
            outcomes.append(fallback if fallback is not None else request.future)
        # Bare futures gather without task wrapping; policy fallbacks
        # resolved at admission are already Decisions.
        await asyncio.gather(
            *(o for o in outcomes if not isinstance(o, Decision))
        )
        return [o if isinstance(o, Decision) else o.result() for o in outcomes]

    def _admit(
        self,
        sample: np.ndarray,
        device_id: str,
        model_version: Optional[int],
        deadline_ms: Optional[float],
    ) -> ScoreRequest:
        """Validate one sample and resolve its version (explicit > pin >
        current) into a queued-but-not-yet-enqueued request."""
        if self._queue is None:
            raise RuntimeError("server is not running: call start() first")
        if self._closed:
            raise RuntimeError("server is stopping: not accepting new requests")
        sample = np.asarray(sample)
        if sample.ndim != 3:
            raise ValueError(f"expected one CHW sample, got shape {sample.shape}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        version = (
            self.models.require(model_version)
            if model_version is not None
            else self.models.resolve(device_id)
        )
        return ScoreRequest(
            sample=sample,
            device_id=str(device_id),
            model_version=version,
            deadline_ms=deadline_ms,
            enqueued_at=time.perf_counter(),
            future=asyncio.get_running_loop().create_future(),
        )

    async def _enqueue(self, request: ScoreRequest) -> Optional[Decision]:
        """Queue ``request``, or return the admission policy's answer."""
        if self._queue.full():
            fallback = self.policy.on_full(request, self)
            if fallback is not None:
                self._note_decision(fallback)
                return fallback
            await self._queue.put(request)
        else:
            self._queue.put_nowait(request)
        return None

    # -- the batcher ----------------------------------------------------
    async def _run(self) -> None:
        queue = self._queue
        assert queue is not None
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await queue.get()
            if item is _SENTINEL:
                break
            batch: List[ScoreRequest] = [item]
            # Opportunistic drain: everything already queued joins the
            # batch immediately (the deterministic bulk-replay path).
            while len(batch) < self.max_batch and not queue.empty():
                nxt = queue.get_nowait()
                if nxt is _SENTINEL:
                    stopping = True
                    break
                batch.append(nxt)
            # Straggler window: wait up to max_wait_ms for late arrivals.
            if not stopping and len(batch) < self.max_batch and self.max_wait_ms > 0:
                deadline = loop.time() + self.max_wait_ms / 1000.0
                while len(batch) < self.max_batch:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                    if nxt is _SENTINEL:
                        stopping = True
                        break
                    batch.append(nxt)
            try:
                self._execute(batch)
            except Exception as exc:  # noqa: BLE001 - the batcher must outlive any batch
                self._fail(batch, exc)
        # Anything that raced into the queue behind the stop sentinel
        # fails fast instead of leaving its caller awaiting forever.
        while not queue.empty():
            straggler = queue.get_nowait()
            if straggler is not _SENTINEL:
                self._fail([straggler], RuntimeError("server stopped"))

    def _execute(self, batch: List[ScoreRequest]) -> None:
        """Resolve one micro-batch: expire, group by version, fuse, answer."""
        for registry in self._registries():
            registry.counter("serve.batches").inc()
            registry.histogram("serve.batch_size").observe(len(batch))
            registry.gauge("serve.queue_depth").set(
                self._queue.qsize() if self._queue is not None else 0
            )
        now = time.perf_counter()
        live: List[ScoreRequest] = []
        for request in batch:
            if request.expired(now):
                self._resolve(request, self.policy.on_expired(request, self))
            else:
                live.append(request)
        # Group by (resolved version, sample shape/dtype) in order of
        # first appearance: one mixed batch loads each version at most
        # once, deterministically, and every group stacks homogeneously
        # (an odd-shaped sample rides in its own group instead of
        # breaking np.stack for its batch-mates).
        retained = set(self.models.versions())
        groups: Dict[tuple, List[ScoreRequest]] = {}
        for request in live:
            if request.model_version not in retained:
                # A publish pruned the version this request resolved at
                # admission; re-resolve (pin > current) rather than let
                # the registry lookup escape into the batcher task.
                request.model_version = self.models.resolve(request.device_id)
            key = (
                request.model_version,
                request.sample.shape,
                request.sample.dtype.str,
            )
            groups.setdefault(key, []).append(request)
        for (version, _, _), group in groups.items():
            try:
                self._score_group(version, group)
            except Exception as exc:  # noqa: BLE001 - fail the group, not the batcher
                self._fail(group, exc)

    def _score_group(self, version: int, group: List[ScoreRequest]) -> None:
        # Grouping in _execute guarantees homogeneous shape/dtype, so
        # one batched digest call amortizes the per-call overhead
        # across the whole group.
        if len(group) > 1:
            digests = content_hash(np.stack([r.sample for r in group], axis=0))
        else:
            digests = [content_hash(group[0].sample)[0]]
        scores: List[Optional[float]] = [None] * len(group)
        hit = [False] * len(group)
        miss_rows: List[int] = []
        miss_keys: List[str] = []
        first_row: Dict[str, List[int]] = {}
        for i, digest in enumerate(digests):
            cached = (
                self.cache.get((digest, version)) if self.cache is not None else None
            )
            if cached is not None:
                scores[i] = cached
                hit[i] = True
            elif digest in first_row:
                # Duplicate content inside the batch: forward once, the
                # extra rows are answered from that single computation.
                # Not a cache hit — the value never came from the cache.
                first_row[digest].append(i)
            else:
                first_row[digest] = [i]
                miss_rows.append(i)
                miss_keys.append(digest)
        if self.cache is not None:
            hits = sum(hit)
            for registry in self._registries():
                if hits:
                    registry.counter("serve.cache_hits").inc(hits)
                if miss_rows:
                    registry.counter("serve.cache_misses").inc(len(miss_rows))
        if miss_rows:
            self._activate(version)
            stacked = np.stack([group[i].sample for i in miss_rows], axis=0)
            with trace_span("serve.forward", batch=len(miss_rows)):
                fresh = self.scorer.score(stacked)
            for registry in self._registries():
                registry.counter("serve.forwarded").inc(len(miss_rows))
            for digest, value in zip(miss_keys, fresh):
                value = float(value)
                if self.cache is not None:
                    self.cache.put((digest, version), value)
                for row in first_row[digest]:
                    scores[row] = value
        batch_size = len(group)
        for request, score, was_hit in zip(group, scores, hit):
            assert score is not None
            self._resolve(
                request,
                Decision(
                    device_id=request.device_id,
                    model_version=version,
                    score=score,
                    selected=score >= self.threshold,
                    status="ok",
                    cache_hit=was_hit,
                    batch_size=batch_size,
                    latency_ms=(time.perf_counter() - request.enqueued_at) * 1000.0,
                ),
            )

    def _note_decision(self, decision: Decision) -> None:
        for registry in self._registries():
            registry.counter("serve.decisions", status=decision.status).inc()
            registry.histogram("serve.latency_ms").observe(decision.latency_ms)

    def _resolve(self, request: ScoreRequest, decision: Decision) -> None:
        self._note_decision(decision)
        if not request.future.done():
            request.future.set_result(decision)

    def _fail(self, requests: Sequence[ScoreRequest], error: BaseException) -> None:
        """Answer failed requests with the exception itself — the
        batcher never dies with futures left pending."""
        failed = [r for r in requests if not r.future.done()]
        if failed:
            # Always recorded process-globally (not just when metrics
            # are enabled): this is the counter stats()["errors"]
            # reports, and it must survive server re-creation.
            self.metrics.counter("serve.errors").inc(len(failed))
            process_metrics().counter("serve.errors").inc(len(failed))
        for request in failed:
            request.future.set_exception(error)

    # -- model activation / invalidation --------------------------------
    def _activate(self, version: int) -> None:
        """Load ``version`` into the scorer's modules (skip when loaded)."""
        if version == self._loaded_version:
            return
        state = self.models.state_view(version)
        self.scorer.encoder.load_state_dict(
            {
                key[len("encoder/") :]: value
                for key, value in state.items()
                if key.startswith("encoder/")
            }
        )
        self.scorer.projector.load_state_dict(
            {
                key[len("projector/") :]: value
                for key, value in state.items()
                if key.startswith("projector/")
            }
        )
        self._loaded_version = version

    def _on_model_publish(self, version: int, models: ModelRegistry) -> None:
        # Stale entries must never serve: drop everything not at a
        # retained version the moment a publish lands (docs/SERVE.md).
        if self.cache is not None:
            self.cache.invalidate_stale(models.versions())
        if self._loaded_version is not None and self._loaded_version not in models.versions():
            self._loaded_version = None  # pruned under us; reload on demand

    # -- fallback + introspection ---------------------------------------
    def fallback_decision(self, request: ScoreRequest, *, fail_open: bool) -> Decision:
        """The degrade policy's cheap answer: cached score if any, else
        a fail-open/fail-closed verdict with no score."""
        cached = (
            self.cache.get((content_hash(request.sample)[0], request.model_version))
            if self.cache is not None
            else None
        )
        if cached is not None:
            return Decision(
                device_id=request.device_id,
                model_version=request.model_version,
                score=cached,
                selected=cached >= self.threshold,
                status="degraded",
                cache_hit=True,
                latency_ms=(time.perf_counter() - request.enqueued_at) * 1000.0,
            )
        return Decision(
            device_id=request.device_id,
            model_version=request.model_version,
            score=None,
            selected=bool(fail_open),
            status="degraded",
            latency_ms=(time.perf_counter() - request.enqueued_at) * 1000.0,
        )

    def rejection_decision(self, request: ScoreRequest, status: str) -> Decision:
        """A shed/expired rejection (no score, never selected)."""
        return Decision(
            device_id=request.device_id,
            model_version=request.model_version,
            score=None,
            selected=False,
            status=status,
            latency_ms=(time.perf_counter() - request.enqueued_at) * 1000.0,
        )

    @property
    def running(self) -> bool:
        return self._batcher is not None

    def stats(self) -> Dict[str, Any]:
        """Service counters (decision statuses, batching, cache, model).

        A thin view over the ``serve.*`` metrics families — the
        instance registry (:attr:`metrics`) is the single source, and
        every key keeps its historical meaning.  The one deliberate
        change: ``errors`` reads the *process-global* ``serve.errors``
        counter, so the count no longer silently resets when a server
        (and its batcher) is torn down and recreated in-process.
        """
        registry = self.metrics
        batch_size = registry.histogram("serve.batch_size")
        out: Dict[str, Any] = {
            "policy": self.policy_name,
            "decisions": {
                status: int(
                    registry.value("serve.decisions", status=status) or 0
                )
                for status in DECISION_STATUSES
            },
            "errors": int(process_metrics().value("serve.errors") or 0),
            "batches": int(registry.value("serve.batches") or 0),
            "mean_batch": batch_size.mean,
            "forwarded": int(registry.value("serve.forwarded") or 0),
            "queue_depth": self.queue_depth,
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "loaded_version": self._loaded_version,
            "current_version": self.models.current_version,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out


class InprocClient:
    """The in-process client: one device id against a running server.

    The test/benchmark front end (and the template for writing a real
    network client): :meth:`score_stream` submits a whole sample stream
    concurrently so the server micro-batches it, while
    :meth:`score_sequential` awaits each decision before sending the
    next — the unbatched request-at-a-time baseline the perf suite
    compares against.
    """

    def __init__(
        self,
        server: ScoringServer,
        device_id: str = "client",
        model_version: Optional[int] = None,
    ) -> None:
        self.server = server
        self.device_id = str(device_id)
        self.model_version = model_version

    async def score(
        self, sample: np.ndarray, deadline_ms: Optional[float] = None
    ) -> Decision:
        return await self.server.submit(
            sample,
            device_id=self.device_id,
            model_version=self.model_version,
            deadline_ms=deadline_ms,
        )

    async def score_stream(
        self, samples: Sequence[np.ndarray], deadline_ms: Optional[float] = None
    ) -> List[Decision]:
        """Submit every sample concurrently (micro-batched by the server)."""
        return await self.server.submit_many(
            samples,
            device_id=self.device_id,
            model_version=self.model_version,
            deadline_ms=deadline_ms,
        )

    async def score_sequential(
        self, samples: Sequence[np.ndarray], deadline_ms: Optional[float] = None
    ) -> List[Decision]:
        """Await each decision before submitting the next (no batching)."""
        return [
            await self.score(sample, deadline_ms=deadline_ms) for sample in samples
        ]
