"""Admission-control policies for the scoring server.

What happens when the server's bounded queue is full — and when a
request's per-request deadline lapses before its micro-batch runs — is
a registered, named policy (``SERVE_POLICIES``; ``config.serve`` /
``repro serve --serve-policy``), mirroring the backend / scenario /
aggregator registries.

A policy implements two hooks, both called by the server:

``on_full(request, server) -> Optional[Decision]``
    The queue is at ``queue_depth``.  Return a :class:`Decision` to
    answer the request immediately without admitting it, or None to
    wait for queue space (backpressure).

``on_expired(request, server) -> Decision``
    The request was admitted but its ``deadline_ms`` lapsed before its
    batch executed.  Must return the request's final decision.

Built-ins (docs/SERVE.md):

* ``block`` — never reject: callers wait for queue space.  The default;
  right for in-process and benchmark use where losing work is worse
  than waiting.
* ``shed`` — reject at the door when full (``status="shed"``,
  never selected).  Keeps tail latency bounded under overload.
* ``degrade`` — answer from the cache when the queue is full or the
  deadline lapsed: a cached score at the request's resolved version
  yields a real ``degraded`` decision, otherwise a scoreless fail-open
  (or fail-closed) verdict.  Graceful degradation: decisions keep
  flowing at full overload, at reduced fidelity.
"""

from __future__ import annotations

from typing import Optional

from repro.registry import register_serve_policy
from repro.serve.server import Decision, ScoreRequest, ScoringServer

__all__ = ["BlockPolicy", "ShedPolicy", "DegradePolicy"]


@register_serve_policy(
    "block",
    aliases=("backpressure",),
    label="Wait for queue space; expired requests are rejected",
)
class BlockPolicy:
    """Backpressure: admission waits however long queue space takes."""

    def on_full(self, request: ScoreRequest, server: ScoringServer) -> Optional[Decision]:
        return None  # wait for space

    def on_expired(self, request: ScoreRequest, server: ScoringServer) -> Decision:
        return server.rejection_decision(request, "expired")


@register_serve_policy(
    "shed",
    aliases=("reject",),
    label="Reject immediately when the queue is full",
)
class ShedPolicy:
    """Load shedding: a full queue answers ``shed`` at the door."""

    def on_full(self, request: ScoreRequest, server: ScoringServer) -> Optional[Decision]:
        return server.rejection_decision(request, "shed")

    def on_expired(self, request: ScoreRequest, server: ScoringServer) -> Decision:
        return server.rejection_decision(request, "expired")


@register_serve_policy(
    "degrade",
    aliases=("fallback",),
    label="Fall back to a cached (or fail-open) decision under overload",
)
class DegradePolicy:
    """Graceful degradation: overload answers from the cache.

    Parameters
    ----------
    fail_open:
        The ``selected`` verdict when no cached score exists.  True
        (default) keeps unknown samples — the conservative choice for a
        selection service, since the score measures what the model has
        *not* learned yet; False drops them.
    """

    def __init__(self, fail_open: bool = True) -> None:
        self.fail_open = bool(fail_open)

    def on_full(self, request: ScoreRequest, server: ScoringServer) -> Optional[Decision]:
        return server.fallback_decision(request, fail_open=self.fail_open)

    def on_expired(self, request: ScoreRequest, server: ScoringServer) -> Decision:
        return server.fallback_decision(request, fail_open=self.fail_open)
