"""The unified experiment surface: :class:`Session`.

One object owns the full lifecycle of a stream-learning run:

* **building** — components (dataset, encoder, projector, scorer) are
  resolved through the :mod:`repro.registry` registries, so any
  registered plugin policy/dataset/encoder/augment is usable with zero
  edits to ``repro`` internals;
* **running** — ``Session.from_config(config).run()`` executes the
  stage-1 stream loop with periodic stage-2 probes, exactly matching
  :func:`repro.experiments.runner.run_stream_experiment` (which is now
  a thin wrapper over this class);
* **observing** — ``on_step`` / ``on_probe`` / ``on_finish`` lifecycle
  callbacks;
* **checkpointing** — :meth:`Session.save_checkpoint` writes a single
  ``.npz`` capturing model weights, optimizer moments, buffer contents,
  RNG states, and stream counters; :meth:`Session.resume` continues a
  run with bitwise-identical step statistics.

Example
-------
>>> from repro.session import Session
>>> from repro.experiments.config import default_config
>>> result = (
...     Session.from_config(default_config(seed=0))
...     .with_policy("contrast-scoring")
...     .with_eval_points(4)
...     .run()
... )
>>> round(result.final_accuracy, 3)  # doctest: +SKIP
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.framework import OnDeviceContrastiveLearner, StepStats
from repro.core.replacement import ContrastScoringPolicy
from repro.core.scoring import ContrastScorer
from repro.data.scenarios import StreamSource, canonical_scenario, create_scenario
from repro.metrics.curves import LearningCurve
from repro.nn.backend import use_backend
from repro.nn.projection import ProjectionHead
from repro.obs import metrics, metrics_enabled, use_metrics
from repro.obs.trace import set_clock, trace_span
from repro.registry import AUGMENTS, ENCODERS, POLICIES, create_policy
from repro.selection.base import ReplacementPolicy
from repro.train.classifier import evaluate_encoder
from repro.train.knn import KnnProbe
from repro.utils.rng import RngRegistry

if TYPE_CHECKING:
    # Imported lazily at runtime: experiments.__init__ imports runner,
    # which imports this module, so a top-level import would cycle.
    from repro.experiments.config import StreamExperimentConfig

__all__ = [
    "ExperimentComponents",
    "StreamRunResult",
    "Session",
    "build_components",
    "config_to_dict",
    "config_from_dict",
]

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1


@dataclass
class ExperimentComponents:
    """The wired-up pieces of one run."""

    dataset: Any
    encoder: Any
    projector: ProjectionHead
    scorer: ContrastScorer
    rngs: RngRegistry


def build_components(config: StreamExperimentConfig) -> ExperimentComponents:
    """Instantiate dataset, encoder, projector, and scorer for a config.

    Every component is resolved by name through :mod:`repro.registry`:
    ``config.dataset`` and ``config.encoder`` may name built-ins or
    plugins registered with ``@register_dataset`` / ``@register_encoder``.

    The width/depth config knobs are *offers*: encoder factories with a
    fixed architecture (``resnet-micro`` etc.) simply don't declare them
    and run at their native shape.  ``config.image_size`` is different —
    ``None`` means "dataset default", so a non-None value is an explicit
    request and :func:`repro.data.datasets.make_dataset` raises if the
    dataset factory cannot honor it.
    """
    from repro.data.datasets import make_dataset

    rngs = RngRegistry(config.seed)
    dataset = make_dataset(config.dataset, image_size=config.image_size)
    encoder = ENCODERS.create(
        config.encoder,
        in_channels=dataset.image_shape[0],
        widths=config.encoder_widths,
        blocks_per_stage=config.encoder_blocks,
        rng=rngs.get("model"),
    )
    projector = ProjectionHead(
        encoder.feature_dim, out_dim=config.projection_dim, rng=rngs.get("model")
    )
    scorer = ContrastScorer(encoder, projector)
    return ExperimentComponents(dataset, encoder, projector, scorer, rngs)


def build_augment(config: StreamExperimentConfig):
    """Resolve the stage-1 strong augmentation through the registry."""
    return AUGMENTS.create(
        config.augment,
        min_crop_scale=config.augment_min_crop,
        jitter_strength=config.augment_jitter,
        grayscale_p=config.augment_grayscale_p,
    )


# ----------------------------------------------------------------------
# Config / result serialization
# ----------------------------------------------------------------------
def config_to_dict(config: StreamExperimentConfig) -> Dict[str, Any]:
    """A JSON-serializable dict round-trippable via :func:`config_from_dict`."""
    out = asdict(config)
    out["encoder_widths"] = list(out["encoder_widths"])
    # asdict() flattens the nested FleetConfig/DeviceSpec dataclasses but
    # keeps the devices tuple; normalize to the strict-JSON shape.
    out["fleet"] = config.fleet.to_dict() if config.fleet is not None else None
    return out


def config_from_dict(data: Dict[str, Any]) -> StreamExperimentConfig:
    """Inverse of :func:`config_to_dict`."""
    from repro.experiments.config import StreamExperimentConfig
    from repro.fleet.spec import FleetConfig

    data = dict(data)
    data["encoder_widths"] = tuple(data["encoder_widths"])
    if data.get("fleet") is not None:
        data["fleet"] = FleetConfig.from_dict(data["fleet"])
    return StreamExperimentConfig(**data)


def _none_if_nan(value: float) -> Optional[float]:
    """NaN -> None so the dict is strict-JSON (JSON has no NaN literal)."""
    return None if isinstance(value, float) and np.isnan(value) else value


def _nan_if_none(value: Optional[float]) -> float:
    return float("nan") if value is None else value


@dataclass
class StreamRunResult:
    """Outcome of one stage-1 run plus its probe evaluations."""

    policy: str
    config: StreamExperimentConfig
    curve: LearningCurve
    final_accuracy: float
    final_loss: float
    mean_select_seconds: float
    mean_train_seconds: float
    rescoring_fraction: Optional[float]
    buffer_class_diversity: float
    wall_seconds: float
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def relative_batch_time(self) -> float:
        """Per-iteration time relative to training alone (Table I metric)."""
        if self.mean_train_seconds <= 0:
            return float("nan")
        return (
            self.mean_select_seconds + self.mean_train_seconds
        ) / self.mean_train_seconds

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (for logging / archiving)."""
        return {
            "policy": self.policy,
            "config": config_to_dict(self.config),
            "curve": {
                "method": self.curve.method,
                "seen_inputs": list(self.curve.seen_inputs),
                "accuracies": list(self.curve.accuracies),
            },
            "final_accuracy": _none_if_nan(self.final_accuracy),
            "final_loss": _none_if_nan(self.final_loss),
            "mean_select_seconds": self.mean_select_seconds,
            "mean_train_seconds": self.mean_train_seconds,
            "rescoring_fraction": self.rescoring_fraction,
            "buffer_class_diversity": self.buffer_class_diversity,
            "wall_seconds": self.wall_seconds,
            "info": dict(self.info),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamRunResult":
        """Inverse of :meth:`to_dict`."""
        curve = LearningCurve(method=data["curve"]["method"])
        for seen, acc in zip(
            data["curve"]["seen_inputs"], data["curve"]["accuracies"]
        ):
            curve.add(seen, acc)
        return cls(
            policy=data["policy"],
            config=config_from_dict(data["config"]),
            curve=curve,
            final_accuracy=_nan_if_none(data["final_accuracy"]),
            final_loss=_nan_if_none(data["final_loss"]),
            mean_select_seconds=data["mean_select_seconds"],
            mean_train_seconds=data["mean_train_seconds"],
            rescoring_fraction=data["rescoring_fraction"],
            buffer_class_diversity=data["buffer_class_diversity"],
            wall_seconds=data["wall_seconds"],
            info=dict(data.get("info", {})),
        )


# ----------------------------------------------------------------------
# The Session facade
# ----------------------------------------------------------------------
class Session:
    """Fluent builder and executor for one stream-learning experiment.

    Construction is cheap; all heavy lifting happens in :meth:`run`.
    Builder methods return ``self`` so calls chain::

        result = (
            Session.from_config(cfg)
            .with_policy("k-center")
            .with_label_fraction(0.1)
            .on_step(lambda learner, stats: print(stats.loss))
            .run()
        )
    """

    def __init__(
        self, config: StreamExperimentConfig, policy: str = "contrast-scoring"
    ) -> None:
        self.config = config
        self._policy_name = policy
        self._eval_points = 6
        self._label_fraction = 1.0
        self._lazy_interval: Optional[int] = None
        self._score_momentum = 0.0
        self._injected_components: Optional[ExperimentComponents] = None
        self._on_step: List[Callable[[OnDeviceContrastiveLearner, StepStats], None]] = []
        self._on_probe: List[Callable[[OnDeviceContrastiveLearner, int, float], None]] = []
        self._on_finish: List[Callable[[StreamRunResult], None]] = []
        self._checkpoint_path: Optional[str] = None
        self._checkpoint_every: Optional[int] = None
        self._resume_state: Optional[Dict[str, Any]] = None
        # live run state (populated by run(); kept for introspection and
        # post-run checkpointing)
        self._components: Optional[ExperimentComponents] = None
        self._learner: Optional[OnDeviceContrastiveLearner] = None
        self._policy: Optional[ReplacementPolicy] = None
        self._stream: Optional[StreamSource] = None
        self._curve: Optional[LearningCurve] = None
        self._diversity: List[float] = []
        self._final_loss = float("nan")
        self._wall_accum = 0.0  # wall seconds from earlier (checkpointed) runs
        self._run_started: Optional[float] = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: Optional[StreamExperimentConfig] = None,
        policy: str = "contrast-scoring",
        **overrides: Any,
    ) -> "Session":
        """Build a session from a config (default config when None).

        Extra keyword arguments are applied as config field overrides,
        e.g. ``Session.from_config(seed=3, dataset="svhn")``.
        """
        from repro.experiments.config import default_config

        config = default_config() if config is None else config
        if overrides:
            config = config.with_(**overrides)
        return cls(config, policy)

    # -- fluent builders ------------------------------------------------
    def with_policy(self, name: str) -> "Session":
        """Select the replacement policy by registered name."""
        self._policy_name = name
        return self

    def with_eval_points(self, eval_points: int) -> "Session":
        """Number of probe checkpoints along the stream (>= 1)."""
        if eval_points < 1:
            raise ValueError(f"eval_points must be >= 1, got {eval_points}")
        self._eval_points = eval_points
        return self

    def with_label_fraction(self, fraction: float) -> "Session":
        """Stage-2 label budget for every probe."""
        self._label_fraction = fraction
        return self

    def with_lazy_interval(self, interval: Optional[int]) -> "Session":
        """Lazy-scoring interval T (contrast-scoring only)."""
        self._lazy_interval = interval
        return self

    def with_score_momentum(self, momentum: float) -> "Session":
        """EMA smoothing of scores (contrast-scoring only)."""
        self._score_momentum = momentum
        return self

    def with_backend(self, name: Optional[str]) -> "Session":
        """Execute the run on a registered array backend.

        Sugar for ``config.with_(backend=name)`` — the selection lives
        on the config so it serializes into checkpoints and sweep
        payloads.  ``None`` inherits the process default.
        """
        self.config = self.config.with_(backend=name)
        return self

    def with_metrics(self, enabled: Optional[bool] = True) -> "Session":
        """Gate hot-path metrics recording (:mod:`repro.obs`) for this run.

        Sugar for ``config.with_(obs=enabled)`` — the flag lives on the
        config so it serializes into checkpoints and crosses the wire
        to sweep/fleet workers, exactly like the backend selection.
        ``None`` defers to the process default (``REPRO_METRICS`` env or
        the CLI ``--metrics`` flag).  Telemetry never alters results:
        runs are bitwise-identical with it on or off.
        """
        self.config = self.config.with_(obs=enabled)
        return self

    def with_scenario(self, name: str) -> "Session":
        """Stream the run through a registered scenario.

        Sugar for ``config.with_(scenario=name)`` — like the backend,
        the selection rides the config so it serializes into
        checkpoints and sweep worker payloads.  Any registered
        :mod:`repro.data.scenarios` name or alias is accepted.
        """
        self.config = self.config.with_(scenario=name)
        return self

    def with_components(self, components: ExperimentComponents) -> "Session":
        """Run on pre-built components instead of building from config."""
        self._injected_components = components
        return self

    def with_checkpointing(
        self, path: str, every: Optional[int] = None
    ) -> "Session":
        """Write checkpoints to ``path``: every ``every`` iterations when
        set, and always on :meth:`save_checkpoint` calls."""
        if every is not None and every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self._checkpoint_path = path
        self._checkpoint_every = every
        return self

    # -- lifecycle callbacks --------------------------------------------
    def on_step(
        self, fn: Callable[[OnDeviceContrastiveLearner, StepStats], None]
    ) -> "Session":
        """Register ``fn(learner, stats)`` to run after every iteration."""
        self._on_step.append(fn)
        return self

    def on_probe(
        self, fn: Callable[[OnDeviceContrastiveLearner, int, float], None]
    ) -> "Session":
        """Register ``fn(learner, seen_inputs, accuracy)`` after each probe."""
        self._on_probe.append(fn)
        return self

    def on_finish(self, fn: Callable[[StreamRunResult], None]) -> "Session":
        """Register ``fn(result)`` to run when :meth:`run` completes."""
        self._on_finish.append(fn)
        return self

    # -- introspection --------------------------------------------------
    @property
    def components(self) -> Optional[ExperimentComponents]:
        """Components of the current/last run (None before :meth:`run`)."""
        return self._components

    @property
    def learner(self) -> Optional[OnDeviceContrastiveLearner]:
        """Learner of the current/last run (None before :meth:`run`)."""
        return self._learner

    @property
    def policy(self) -> Optional[ReplacementPolicy]:
        """Policy instance of the current/last run."""
        return self._policy

    # -- execution ------------------------------------------------------
    def run(self, stop_after: Optional[int] = None) -> StreamRunResult:
        """Execute the stream experiment (or its remainder, on resume).

        Parameters
        ----------
        stop_after:
            Stop after this many iterations *of this call* (used with
            checkpointing to split a run; None = run to completion).

        The fresh-run path performs exactly the same sequence of RNG
        draws and model updates as the legacy
        ``run_stream_experiment``, so results are bit-identical.

        The whole run executes on ``config.backend`` when set (any
        registered :mod:`repro.nn.backend` name; ``None`` inherits the
        process default), and streams through ``config.scenario`` (any
        registered :mod:`repro.data.scenarios` name; default
        ``temporal``).  Both selections ride the config, so they also
        cross the wire to parallel-sweep workers and survive in
        checkpoints.
        """
        with use_backend(self.config.backend), use_metrics(self.config.obs):
            return self._run(stop_after)

    def _run(self, stop_after: Optional[int]) -> StreamRunResult:
        # Canonicalize up front so result.policy, curve.method, and the
        # checkpoint all carry the canonical names even when aliases
        # ("cs", "cyclic", ...) were selected.
        self._policy_name = POLICIES.get(self._policy_name).name
        self.config = self.config.with_(
            scenario=canonical_scenario(self.config.scenario)
        )
        config = self.config
        if (
            self._resume_state is not None
            and self._resume_state["meta"].get("injected_components")
            and self._injected_components is None
        ):
            # Injected components can't be rebuilt from config alone;
            # resuming with config-built ones would silently diverge.
            raise RuntimeError(
                "this checkpoint was written from a session running on "
                "injected components (with_components); rebuild them and "
                "pass them via with_components() before run()"
            )
        comp = (
            self._injected_components
            if self._injected_components is not None
            else build_components(config)
        )
        self._components = comp
        rngs = comp.rngs

        policy = create_policy(
            self._policy_name,
            scorer=comp.scorer,
            capacity=config.buffer_size,
            rng=rngs.get("policy"),
            temperature=config.temperature,
            lazy_interval=self._lazy_interval,
            score_momentum=self._score_momentum,
        )
        if not isinstance(policy, ReplacementPolicy):
            raise TypeError(
                f"policy {self._policy_name!r} built a {type(policy).__name__}, "
                "expected a ReplacementPolicy"
            )
        self._policy = policy
        augment = build_augment(config)
        learner = OnDeviceContrastiveLearner(
            comp.encoder,
            comp.projector,
            policy,
            config.buffer_size,
            rngs.get("augment"),
            temperature=config.temperature,
            lr=config.lr,
            weight_decay=config.weight_decay,
            augment=augment,
        )
        self._learner = learner
        stream = create_scenario(
            config.scenario,
            dataset=comp.dataset,
            stc=config.stc,
            rng=rngs.get("stream"),
            total_samples=config.total_samples,
        )
        self._stream = stream

        # Fixed evaluation pools shared across checkpoints (and across
        # policy runs with the same seed, since the registry keys are
        # stable).
        probe_train_x, probe_train_y = comp.dataset.make_split(
            config.probe_train_per_class, rngs.get("probe-train-pool")
        )
        probe_test_x, probe_test_y = comp.dataset.make_split(
            config.probe_test_per_class, rngs.get("probe-test-pool")
        )

        def probe() -> float:
            result = evaluate_encoder(
                comp.encoder,
                probe_train_x,
                probe_train_y,
                probe_test_x,
                probe_test_y,
                comp.dataset.num_classes,
                rngs.get("probe"),
                label_fraction=self._label_fraction,
                lr=config.probe_lr,
                epochs=config.probe_epochs,
            )
            return result.accuracy

        total_iters = config.iterations
        eval_every = max(1, total_iters // self._eval_points)
        curve = LearningCurve(method=self._policy_name)
        self._curve = curve
        self._diversity = []
        self._final_loss = float("nan")
        self._wall_accum = 0.0  # fresh run; a resume below restores it

        if self._resume_state is not None:
            self._apply_resume_state(learner, stream, policy, curve, rngs)

        if stop_after is not None and stop_after < 0:
            raise ValueError(f"stop_after must be >= 0, got {stop_after}")

        # Hot-path instrumentation (repro.obs): resolve every instrument
        # once, outside the loop, so the per-step cost when enabled is a
        # few attribute ops — and a single bool check when disabled.
        # Recording is observation only (no RNG draws, no reordering),
        # so enabling it is bitwise-invisible to the run's results.
        step_counter = select_hist = train_hist = probe_hist = diversity_gauge = None
        if metrics_enabled():
            registry = metrics()
            labels = {"policy": self._policy_name}
            step_counter = registry.counter("session.steps", **labels)
            select_hist = registry.histogram("session.select_seconds", **labels)
            train_hist = registry.histogram("session.train_seconds", **labels)
            probe_hist = registry.histogram("session.probe_seconds", **labels)
            diversity_gauge = registry.gauge("session.buffer_diversity", **labels)

        start = time.perf_counter()
        self._run_started = start
        steps_this_call = 0
        remaining = config.total_samples - learner.seen_inputs
        segments = (
            stream.segments(config.buffer_size, remaining)
            if remaining > 0 and stop_after != 0
            else ()
        )
        for segment in segments:
            set_clock(step=learner.iteration + 1)
            with trace_span("session.step"):
                stats = learner.process_segment(segment)
            self._final_loss = stats.loss
            self._diversity.append(
                float(
                    (learner.buffer_class_histogram(comp.dataset.num_classes) > 0).sum()
                )
            )
            if step_counter is not None:
                step_counter.inc()
                select_hist.observe(stats.select_seconds)
                train_hist.observe(stats.train_seconds)
                diversity_gauge.set(self._diversity[-1])
            for fn in self._on_step:
                fn(learner, stats)
            is_last = learner.seen_inputs >= config.total_samples
            if learner.iteration % eval_every == 0 or is_last:
                probe_start = time.perf_counter()
                with trace_span("session.probe"):
                    accuracy = probe()
                if probe_hist is not None:
                    probe_hist.observe(time.perf_counter() - probe_start)
                curve.add(learner.seen_inputs, accuracy)
                for fn in self._on_probe:
                    fn(learner, learner.seen_inputs, accuracy)
            steps_this_call += 1
            if (
                self._checkpoint_every is not None
                and learner.iteration % self._checkpoint_every == 0
            ):
                self.save_checkpoint()
            if stop_after is not None and steps_this_call >= stop_after:
                break
        # Accumulate across resumes so wall_seconds spans the whole run,
        # matching the other aggregates (curve, mean timings, diversity).
        wall = self._wall_accum + (time.perf_counter() - start)
        self._wall_accum = wall
        self._run_started = None

        rescoring = None
        if isinstance(policy, ContrastScoringPolicy):
            rescoring = policy.lazy.rescoring_fraction

        # Training-free kNN readout of the final encoder on the fixed
        # probe pools — the accuracy cell of the scenario-sweep
        # robustness table.  knn_predict draws no RNG, so this never
        # perturbs checkpoint/resume bitwiseness.
        knn_accuracy = KnnProbe(comp.encoder).score(
            probe_train_x,
            probe_train_y,
            probe_test_x,
            probe_test_y,
            num_classes=comp.dataset.num_classes,
        )

        result = StreamRunResult(
            policy=self._policy_name,
            config=config,
            curve=curve,
            final_accuracy=curve.final_accuracy if len(curve) else float("nan"),
            final_loss=self._final_loss,
            mean_select_seconds=learner.mean_select_seconds(),
            mean_train_seconds=learner.mean_train_seconds(),
            rescoring_fraction=rescoring,
            buffer_class_diversity=(
                float(np.mean(self._diversity)) if self._diversity else 0.0
            ),
            wall_seconds=wall,
            info={"final_knn_accuracy": float(knn_accuracy)},
        )
        for fn in self._on_finish:
            fn(result)
        return result

    # -- checkpoint / resume --------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """The live run state as an in-memory checkpoint.

        Returns ``{"meta": <JSON-serializable dict>, "learner":
        {name: ndarray}}`` — exactly the content
        :meth:`save_checkpoint` persists, without touching disk.  A
        session rebuilt from it (:meth:`from_state_dict` /
        :meth:`load_state_dict`) continues the run with
        bitwise-identical step statistics; the fleet coordinator uses
        this to carry per-device state across rounds and process
        boundaries.  Only meaningful during or after :meth:`run` (the
        learner must exist).

        Transport invariant: the ``"learner"`` arrays are the live
        parameter buffers, **not copies** — wire formats
        (:mod:`repro.experiments.wire`) encode them zero-copy through a
        ``memoryview`` over each contiguous array.  Callers that ship
        the dict across a process boundary must not mutate the session
        until the encode completes; codecs must never hold views past
        their encode call.
        """
        if self._learner is None or self._components is None or self._stream is None:
            raise RuntimeError("nothing to checkpoint: run() has not started")

        lazy_state = None
        if isinstance(self._policy, ContrastScoringPolicy):
            lazy_state = self._policy.lazy.state_dict()
        curve = self._curve if self._curve is not None else LearningCurve(self._policy_name)
        meta = {
            "version": CHECKPOINT_VERSION,
            "config": config_to_dict(self.config),
            "policy": self._policy_name,
            "eval_points": self._eval_points,
            "label_fraction": self._label_fraction,
            "lazy_interval": self._lazy_interval,
            "score_momentum": self._score_momentum,
            "checkpoint_every": self._checkpoint_every,
            "injected_components": self._injected_components is not None,
            "rng": self._components.rngs.state(),
            "stream": self._stream.state_dict(),
            "lazy": lazy_state,
            "curve": {
                "seen_inputs": list(curve.seen_inputs),
                "accuracies": list(curve.accuracies),
            },
            "diversity": list(self._diversity),
            "final_loss": self._final_loss,
            "wall_accum": self._wall_accum
            + (
                time.perf_counter() - self._run_started
                if self._run_started is not None
                else 0.0
            ),
        }
        return {"meta": meta, "learner": self._learner.state_dict()}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Point this session at a state written by :meth:`state_dict`.

        Replaces the config, policy selection, and run options with the
        checkpointed ones; the next :meth:`run` call continues the
        original run bitwise-identically.
        """
        meta = state["meta"]
        version = meta.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        self.config = config_from_dict(meta["config"])
        self._policy_name = meta["policy"]
        self._eval_points = int(meta["eval_points"])
        self._label_fraction = float(meta["label_fraction"])
        self._lazy_interval = meta["lazy_interval"]
        self._score_momentum = float(meta["score_momentum"])
        self._checkpoint_every = meta.get("checkpoint_every")
        self._resume_state = {
            "meta": meta,
            "learner": {
                key: np.asarray(value).copy()
                for key, value in state["learner"].items()
            },
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "Session":
        """A fresh session continuing the run captured by
        :meth:`state_dict` (the in-memory analogue of :meth:`resume`)."""
        meta = state["meta"]
        version = meta.get("version")
        if version != CHECKPOINT_VERSION:
            # Checked before the config parse: an incompatible layout
            # must fail with the version message, not a config error.
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        session = cls(config_from_dict(meta["config"]), policy=meta["policy"])
        session.load_state_dict(state)
        return session

    def save_checkpoint(self, path: Optional[str] = None) -> str:
        """Write the live run state to ``path`` (a single ``.npz``).

        Only meaningful during or after :meth:`run` (the learner must
        exist).  Returns the path written.
        """
        path = path if path is not None else self._checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path: pass one or use with_checkpointing")
        if not path.endswith(".npz"):
            path += ".npz"  # np.savez would append it silently otherwise
        state = self.state_dict()
        arrays = {
            f"learner/{key}": value for key, value in state["learner"].items()
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez(path, meta=np.array(json.dumps(state["meta"])), **arrays)
        return path

    @classmethod
    def resume(cls, path: str) -> "Session":
        """Rebuild a session from a checkpoint written by
        :meth:`save_checkpoint`; its :meth:`run` continues the original
        run and produces bitwise-identical step statistics."""
        if not path.endswith(".npz"):
            path += ".npz"  # mirror save_checkpoint's normalization
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            arrays = {
                key[len("learner/") :]: archive[key].copy()
                for key in archive.files
                if key.startswith("learner/")
            }
        session = cls.from_state_dict({"meta": meta, "learner": arrays})
        session._checkpoint_path = path
        return session

    def _apply_resume_state(
        self,
        learner: OnDeviceContrastiveLearner,
        stream: StreamSource,
        policy: ReplacementPolicy,
        curve: LearningCurve,
        rngs: RngRegistry,
    ) -> None:
        """Fast-forward freshly built components to the checkpoint.

        Restore happens *after* construction and probe-pool creation:
        those consume RNG draws deterministically from the registry's
        initial states, so setting the saved generator states afterwards
        lands every generator exactly where the original run left it.
        """
        state = self._resume_state
        assert state is not None
        meta = state["meta"]
        learner.load_state_dict(state["learner"])
        rngs.set_state(meta["rng"])
        stream.load_state_dict(meta["stream"])
        if meta["lazy"] is not None and isinstance(policy, ContrastScoringPolicy):
            policy.lazy.load_state_dict(meta["lazy"])
        for seen, acc in zip(
            meta["curve"]["seen_inputs"], meta["curve"]["accuracies"]
        ):
            curve.add(seen, acc)
        self._diversity = [float(v) for v in meta["diversity"]]
        self._final_loss = float(meta["final_loss"])
        self._wall_accum = float(meta.get("wall_accum", 0.0))
        self._resume_state = None
