"""Table I: the impacts of lazy scoring.

Sweeps the lazy interval T over the paper's grid {disabled, 4, 20, 50,
100, 200}.  Paper shape: re-scoring percentage falls roughly like 1/T
(100% → 21.78 → 4.31 → 1.71 → 0.89 → 0.44), relative batch time falls
from 1.478 toward ~1.17, accuracy is flat-to-up for moderate T with a
drop at the largest interval.
"""

from conftest import describe

from repro.experiments import (
    LAZY_INTERVALS,
    default_config,
    format_table1,
    run_table1,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_table1_lazy_scoring(benchmark, report, run_meta):
    config = scaled_config(
        default_config(seed=bench_seed()).with_(total_samples=3072)
    )
    result = benchmark.pedantic(
        lambda: run_table1(config, intervals=LAZY_INTERVALS),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Table I — lazy scoring sweep (cifar10-like)", run_meta, config)]
    lines.append(format_table1(result))
    eager = result.runs[None]
    lines.append(
        f"\npaper targets: re-scoring pct ~1/T; relative batch time decreasing "
        f"in T; accuracy stable for moderate T.\n"
        f"measured: eager re-scoring {eager.rescoring_fraction:.1%}, relative "
        f"batch time {eager.relative_batch_time:.3f}"
    )
    report("\n".join(lines))

    # structural checks that hold at any scale
    assert eager.rescoring_fraction == 1.0
    fractions = [
        run.rescoring_fraction
        for interval, run in result.runs.items()
        if interval is not None
    ]
    assert all(f < 1.0 for f in fractions)
    # larger interval => no more re-scoring than smaller interval
    ordered = [result.runs[t].rescoring_fraction for t in (4, 20, 50, 100, 200)]
    assert all(a >= b - 0.02 for a, b in zip(ordered, ordered[1:]))
