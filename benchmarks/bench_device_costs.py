"""Ablation E: the on-device cost model behind the paper's motivation.

Two analytic tables:

1. **Storage/energy (§I)** — store-the-whole-stream vs. the paper's
   buffer-only framework, on a Jetson-class and an MCU-class profile.
   Expected shape: store-all grows without bound, overflows MCU Flash,
   and costs orders of magnitude more write energy; the buffer is
   constant-size and Flash-free.
2. **Analytic Table I** — per-iteration FLOPs of training vs. scoring
   across lazy intervals; the FLOP ratio mirrors the measured relative
   batch time.
"""

from conftest import describe

from repro.device import (
    JETSON_CLASS,
    MCU_CLASS,
    iteration_compute_cost,
    storage_cost,
)
from repro.experiments import default_config, scaled_config
from repro.experiments.config import bench_seed
from repro.session import build_components
from repro.utils.tables import format_table


def test_device_cost_model(benchmark, report, run_meta):
    config = scaled_config(default_config(seed=bench_seed()))
    comp = build_components(config)
    image_size = comp.dataset.config.image_size

    def run():
        storage_rows = []
        for profile in (JETSON_CLASS, MCU_CLASS):
            for stream in (10_000, 1_000_000):
                rep = storage_cost(
                    profile,
                    stream,
                    comp.dataset.image_shape,
                    config.buffer_size,
                    epochs_over_store=100,
                )
                storage_rows.append(
                    [
                        profile.name,
                        f"{stream:,}",
                        f"{rep.store_all_bytes / 1e6:.1f} MB",
                        f"{rep.buffer_bytes / 1e3:.1f} KB",
                        f"{rep.store_all_energy_mj:.1f} mJ",
                        "yes" if rep.exceeds_flash else "no",
                    ]
                )
        compute_rows = []
        for interval in (None, 4, 20, 50, 100, 200):
            rep = iteration_compute_cost(
                JETSON_CLASS,
                comp.encoder,
                comp.projector,
                image_size,
                config.buffer_size,
                lazy_interval=interval,
            )
            compute_rows.append(
                [
                    "disabled" if interval is None else str(interval),
                    f"{rep.train_flops / 1e6:.1f}M",
                    f"{rep.scoring_flops_lazy / 1e6:.1f}M",
                    f"{rep.relative_batch_flops_lazy:.3f}",
                ]
            )
        return storage_rows, compute_rows

    storage_rows, compute_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [describe("Ablation E — on-device cost model", run_meta, config)]
    lines.append("storage: store-everything vs buffer-only (100 training epochs)")
    lines.append(
        format_table(
            ["device", "stream samples", "store-all", "buffer", "store-all energy", "exceeds flash"],
            storage_rows,
        )
    )
    lines.append("\ncompute: analytic Table I (FLOPs per framework iteration)")
    lines.append(
        format_table(
            ["lazy interval", "train FLOPs", "scoring FLOPs", "relative batch FLOPs"],
            compute_rows,
        )
    )
    report("\n".join(lines))

    relative = [float(r[3]) for r in compute_rows]
    assert relative[0] == max(relative)  # eager scoring is the most expensive
    assert all(a >= b for a, b in zip(relative[1:], relative[2:]))