"""Ablation F: adapting to environment drift (class-incremental stream).

The stream unlocks half the classes at the midpoint (growing phases);
the second half of the stream is where the paper's "adapt to a new
environment" behaviour shows.  Expected shape: contrast scoring's
new-class accuracy is at least competitive with the baselines because
high-scoring never-seen classes flood the buffer right after the drift,
while FIFO forgets old classes and random dilutes new ones.
"""

from conftest import describe

from repro.experiments import default_config, scaled_config
from repro.experiments.config import bench_seed
from repro.experiments.drift import format_drift, run_drift_experiment


def test_ablation_environment_drift(benchmark, report, run_meta):
    config = scaled_config(
        default_config(seed=bench_seed()).with_(total_samples=2560)
    )
    result = benchmark.pedantic(
        lambda: run_drift_experiment(config, num_phases=2),
        rounds=1,
        iterations=1,
    )
    lines = [
        describe("Ablation F — environment drift (class-incremental)", run_meta, config)
    ]
    lines.append(format_drift(result))
    lines.append(
        f"\nclasses {result.new_classes} first appear at the stream midpoint; "
        "'new-class acc' measures adaptation to them."
    )
    report("\n".join(lines))

    for acc in result.overall.values():
        assert 0.0 <= acc <= 1.0
    assert len(result.new_classes) > 0
