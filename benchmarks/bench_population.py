#!/usr/bin/env python3
"""Nightly population-scale fleet smoke — 1000 devices, K=50, 5 rounds.

Drives :class:`repro.fleet.FleetCoordinator` directly (no single-device
baseline) over a roster far larger than the per-round cast, with the
full ISSUE 9 population stack engaged at once: round-robin client
sampling, a seeded fault plan (10% dropout plus one straggler past the
round deadline), staleness-weighted ``fedavg-async`` aggregation, and
the lossy ``delta-q8`` broadcast codec over the parallel worker pool.

The acceptance bar is wall-clock: the whole run must finish inside
``--max-seconds`` (CI uses 300).  The JSON report additionally records
the per-round cast sizes, dropout/straggler counts, and sampled-device
throughput so the nightly artifact shows *where* time went when the
bar is ever missed.  ``--trace-out`` further enables the telemetry
layer (:mod:`repro.obs`) and writes the run's span trace — worker
spans shipped home and filed under per-process lanes — as JSON-lines;
the nightly job uploads it next to the JSON report.

Model/stream sizes are fixed tiny here on purpose — the point of this
smoke is coordinator overhead at population scale (sampling, fault
draws, pending-report bookkeeping, codec channels for 1000 potential
devices), not training throughput, which ``bench_perf_suite.py``
already tracks.

Run from anywhere::

    python benchmarks/bench_population.py --devices 1000 \
        --participants 50 --rounds 5 --workers 4 --max-seconds 300
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.config import bench_seed, default_config
from repro.fleet import DeviceSpec, FleetConfig, FleetCoordinator
from repro.fleet.faults import DeviceFaults, FaultPlan


def population_config(devices: int, participants: int, rounds: int, seed: int):
    """The 1000-device smoke config: tiny model, full population stack."""
    plan = FaultPlan(
        seed=seed,
        default=DeviceFaults(dropout_prob=0.1),
        overrides=((1, DeviceFaults(straggler_delay_s=2.5)),),
    )
    return default_config(seed=seed).with_(
        image_size=10,
        encoder_widths=(8, 16),
        projection_dim=16,
        buffer_size=16,
        total_samples=256,
        probe_train_per_class=10,
        probe_test_per_class=5,
        probe_epochs=5,
        fleet=FleetConfig(
            devices=tuple(DeviceSpec() for _ in range(devices)),
            rounds=rounds,
            participants=participants,
            sampler="round-robin",
            round_deadline_s=1.0,
            fault_plan=plan,
        ),
        aggregator="fedavg-async",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=1000)
    parser.add_argument("--participants", type=int, default=50)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=300.0,
        help="fail (exit 1) when the run takes longer than this",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_population.json"),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="also record a span trace of the run (repro.obs) and write "
        "it here as JSON-lines — the nightly job uploads this artifact",
    )
    args = parser.parse_args(argv)
    seed = args.seed if args.seed is not None else bench_seed()

    tracer = None
    if args.trace_out is not None:
        from repro.obs import METRICS_ENV, set_metrics_enabled
        from repro.obs.trace import TRACE_ENV, SpanTracer, set_tracer

        # Env first: pool workers fork later and read these at startup,
        # which is how their spans/metrics ride home with the results.
        os.environ[TRACE_ENV] = "1"
        os.environ[METRICS_ENV] = "1"
        set_metrics_enabled(True)
        tracer = SpanTracer()
        set_tracer(tracer)

    config = population_config(
        args.devices, args.participants, args.rounds, seed
    )
    print(
        f"population smoke: {args.devices} devices, K={args.participants} "
        f"x {args.rounds} rounds, {args.workers} workers, "
        f"delta-q8 / fedavg-async / round-robin, seed={seed}"
    )
    t0 = time.perf_counter()
    coordinator = FleetCoordinator(
        config, workers=args.workers, wire_format="delta-q8"
    )
    setup_s = time.perf_counter() - t0
    result = coordinator.run()
    wall_s = time.perf_counter() - t0

    trained = sum(len(stats.devices) for stats in result.rounds)
    dropped = sum(len(stats.dropped or ()) for stats in result.rounds)
    late = sum(len(stats.late or ()) for stats in result.rounds)
    report: Dict[str, object] = {
        "devices": args.devices,
        "participants": args.participants,
        "rounds": args.rounds,
        "workers": args.workers,
        "seed": seed,
        "wire_format": "delta-q8",
        "aggregator": "fedavg-async",
        "sampler": "round-robin",
        "setup_s": setup_s,
        "wall_s": wall_s,
        "max_seconds": args.max_seconds,
        "trained_device_rounds": trained,
        "dropped_device_rounds": dropped,
        "late_device_rounds": late,
        "sampled_devices_per_s": trained / wall_s,
        "final_global_knn_accuracy": result.final_global_knn_accuracy,
        "per_round": [
            {
                "round": stats.round_index,
                "sampled": len(stats.participants or ()),
                "trained": len(stats.devices),
                "dropped": len(stats.dropped or ()),
                "late": len(stats.late or ()),
                "synchronized": stats.synchronized,
            }
            for stats in result.rounds
        ],
        "timings": result.timings,
        "meta": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "unix_time": time.time(),
        },
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    if tracer is not None:
        tracer.to_jsonl(args.trace_out)
        print(f"  trace: {len(tracer.spans)} spans -> {args.trace_out}")
    print(
        f"  {trained} device-rounds trained ({dropped} dropped, {late} "
        f"late) in {wall_s:.1f}s -> {trained / wall_s:.1f} sampled "
        f"devices/s; wrote {args.output}"
    )
    if wall_s > args.max_seconds:
        print(
            f"FAILED: wall {wall_s:.1f}s exceeded the "
            f"{args.max_seconds:.0f}s budget"
        )
        return 1
    print(f"within budget ({wall_s:.1f}s <= {args.max_seconds:.0f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
