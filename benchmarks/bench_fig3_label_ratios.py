"""Fig. 3 + §IV-B: accuracy with 1% / 10% labels across five selection
methods, plus the supervised-only reference.

Paper shape: Contrast Scoring wins at both ratios; its margin is larger
at 1% than at 10%; Random/FIFO are the strongest baselines; supervised
training on the labeled subset alone is far below every contrastive
pipeline.
"""

from conftest import describe

from repro.experiments import default_config, format_fig3, run_fig3, scaled_config
from repro.experiments.config import bench_seed


def _config():
    return scaled_config(
        default_config(seed=bench_seed()).with_(
            total_samples=6144,
            probe_train_per_class=100,  # 1% of 1000-sample pool = 1/class
            probe_test_per_class=20,
        )
    )


def test_fig3_label_ratios(benchmark, report, run_meta):
    config = _config()
    result = benchmark.pedantic(
        lambda: run_fig3(config, label_fractions=(0.01, 0.1)),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Fig. 3 — accuracy vs labeling ratio (cifar10-like)", run_meta, config)]
    lines.append(format_fig3(result))
    cs_1 = result.accuracy["contrast-scoring"][0.01]
    cs_10 = result.accuracy["contrast-scoring"][0.1]
    lines.append(
        f"\npaper targets: CS best at both ratios; margins larger at 1%.\n"
        f"measured: CS 1%={cs_1:.3f}, 10%={cs_10:.3f}; "
        f"supervised 1%={result.supervised[0.01]:.3f}, "
        f"10%={result.supervised[0.1]:.3f}"
    )
    report("\n".join(lines))

    for by_fraction in result.accuracy.values():
        for acc in by_fraction.values():
            assert 0.0 <= acc <= 1.0
    assert set(result.supervised) == {0.01, 0.1}
