"""Shared benchmark fixtures.

``report`` prints through pytest's capture so the regenerated paper
tables land in the terminal (and in bench_output.txt when tee'd), not
in swallowed captured-output buffers.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import bench_scale, bench_seed


@pytest.fixture
def report(request):
    """Print a block of text bypassing pytest's output capture."""
    capmanager = request.config.pluginmanager.getplugin("capturemanager")

    def _print(text: str) -> None:
        if capmanager is not None:
            with capmanager.global_and_fixture_disabled():
                print(f"\n{text}", flush=True)
        else:  # pragma: no cover - capture plugin always present under pytest
            print(f"\n{text}", flush=True)

    return _print


@pytest.fixture
def run_meta():
    """The scale/seed knobs, echoed into every benchmark report."""
    return {"scale": bench_scale(), "seed": bench_seed()}


def describe(name: str, meta: dict, config) -> str:
    """Header block identifying the experiment and resolved parameters."""
    return (
        f"=== {name} ===\n"
        f"scale={meta['scale']} seed={meta['seed']} dataset={config.dataset} "
        f"buffer={config.buffer_size} stc={config.stc} "
        f"total_samples={config.total_samples} lr={config.lr:g}"
    )
