"""Table II: accuracy under different buffer sizes.

Buffer sweep {8, 16, 32, 64} (the paper's {8, 32, 128, 256} shrunk by
the same 8x as the default buffer) with lr ∝ sqrt(buffer).  Paper
shape: Contrast Scoring wins at every size; all methods improve with
size; the CS margin tends to grow with buffer size.
"""

from conftest import describe

from repro.experiments import (
    BUFFER_SIZES,
    default_config,
    format_table2,
    run_table2,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_table2_buffer_sizes(benchmark, report, run_meta):
    config = scaled_config(
        default_config(seed=bench_seed()).with_(total_samples=2048)
    )
    result = benchmark.pedantic(
        lambda: run_table2(config, buffer_sizes=BUFFER_SIZES),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Table II — buffer size sweep (cifar10-like)", run_meta, config)]
    lines.append(format_table2(result))
    margins = {b: result.margin(b, "random-replace") for b in BUFFER_SIZES}
    lines.append(
        "\npaper targets: CS wins at every size; accuracy grows with size.\n"
        "measured CS-vs-Random margins: "
        + ", ".join(f"buf {b}: {m:+.3f}" for b, m in margins.items())
    )
    report("\n".join(lines))

    for by_policy in result.runs.values():
        for run in by_policy.values():
            assert 0.0 <= run.final_accuracy <= 1.0
