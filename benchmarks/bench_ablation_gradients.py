"""Ablation A: the §III-C score-gradient relation, quantitatively.

Measures the Spearman rank correlation between contrast score (Eq. 2)
and NT-Xent gradient magnitude (Eq. 5) on live projections at several
points along a training run, plus the mean gradient norms of the lowest-
and highest-score quartiles (the paper's Case 1 / Case 2).

Expected shape: strongly positive correlation throughout; the high-score
quartile's gradients dominate the low-score quartile's.
"""

from conftest import describe

from repro.experiments import (
    default_config,
    format_gradient_ablation,
    run_gradient_ablation,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_ablation_score_gradient_relation(benchmark, report, run_meta):
    config = scaled_config(
        default_config(seed=bench_seed()).with_(total_samples=1024)
    )
    result = benchmark.pedantic(
        lambda: run_gradient_ablation(config, probes=4),
        rounds=1,
        iterations=1,
    )
    lines = [
        describe("Ablation A — contrast score vs gradient magnitude", run_meta, config)
    ]
    lines.append(format_gradient_ablation(result))
    lines.append(
        "\npaper claim (III-C): high score => large gradient, low score => "
        "near-zero gradient."
    )
    report("\n".join(lines))

    # Case 1 / Case 2: high-score quartile must out-gradient low-score one.
    for low, high in zip(result.low_score_grad, result.high_score_grad):
        assert high >= low
    # correlation positive at every checkpoint
    assert all(c > 0 for c in result.correlations)
