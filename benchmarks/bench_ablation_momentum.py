"""Ablation D: momentum scores vs lazy scoring (Table I conjecture).

The paper conjectures the small accuracy *gain* of lazy scoring comes
from stale scores acting like a momentum encoder's slowly-updated
targets ("the score computed multiple iterations ago serves as a
momentum score").  This ablation makes the conjecture testable:
explicit EMA smoothing of fresh scores (no laziness) is compared with
plain eager scoring and with a lazy run.

Expected shape: EMA-smoothed and lazy variants land in the same
accuracy neighbourhood as eager scoring (within a few points), while
only the lazy variant also cuts the re-scoring percentage.
"""

from conftest import describe

from repro.experiments import (
    default_config,
    format_momentum_ablation,
    run_momentum_ablation,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_ablation_momentum_scores(benchmark, report, run_meta):
    config = scaled_config(
        default_config(seed=bench_seed()).with_(total_samples=2048)
    )
    result = benchmark.pedantic(
        lambda: run_momentum_ablation(config, momenta=(0.0, 0.9)),
        rounds=1,
        iterations=1,
    )
    lines = [
        describe("Ablation D — momentum scores vs lazy scoring", run_meta, config)
    ]
    lines.append(format_momentum_ablation(result))
    lines.append(
        "\npaper conjecture (Table I discussion): slowly-updated scores act "
        "like a momentum score; lazy scoring approximates EMA smoothing."
    )
    report("\n".join(lines))

    assert len(result.settings) == 3
    assert all(0.0 <= a <= 1.0 for a in result.accuracies)
    # only the lazy variant reduces re-scoring below 100%
    assert result.rescoring[0] == 1.0
    assert result.rescoring[-1] < 1.0
