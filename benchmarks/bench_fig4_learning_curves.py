"""Fig. 4: learning curves on CIFAR-10 (a) and ImageNet-100 (b).

Paper shape: Contrast Scoring's accuracy-vs-seen-inputs curve dominates
Random and FIFO; on CIFAR-10 it reaches the random policy's accuracy
~2.67x faster, and final accuracies order CS > Random > FIFO.
"""

from conftest import describe

from repro.experiments import (
    default_config,
    format_learning_curves,
    run_learning_curves,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_fig4a_cifar10(benchmark, report, run_meta):
    config = scaled_config(
        default_config("cifar10", seed=bench_seed()).with_(total_samples=6144)
    )
    result = benchmark.pedantic(
        lambda: run_learning_curves("cifar10", config, eval_points=6),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Fig. 4(a) — learning curve, cifar10-like", run_meta, config)]
    lines.append(format_learning_curves(result))
    report("\n".join(lines))

    finals = result.final_accuracies()
    assert all(0.0 <= acc <= 1.0 for acc in finals.values())
    assert len(result.runs["contrast-scoring"].curve) >= 4


def test_fig4b_imagenet100(benchmark, report, run_meta):
    config = scaled_config(
        default_config("imagenet100", seed=bench_seed()).with_(
            total_samples=4096,
            probe_train_per_class=15,
            probe_test_per_class=8,
            augment_jitter=0.18,
        )
    )
    result = benchmark.pedantic(
        lambda: run_learning_curves("imagenet100", config, eval_points=4),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Fig. 4(b) — learning curve, imagenet100-like", run_meta, config)]
    lines.append(format_learning_curves(result))
    report("\n".join(lines))

    finals = result.final_accuracies()
    assert all(0.0 <= acc <= 1.0 for acc in finals.values())
