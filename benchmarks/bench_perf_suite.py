#!/usr/bin/env python3
"""Performance baseline suite — emits machine-readable ``BENCH_perf.json``.

Times the framework's hot paths so every future PR has a trajectory to
beat (ROADMAP: "fast as the hardware allows"):

1. **scoring** — the batched contrast scorer vs. the per-sample
   reference implementation (``ContrastScorer.score_loop``), on the
   default encoder.
2. **conv** — convolution forward under autograd, forward under
   ``no_grad`` (im2col workspace reuse), and forward+backward; plus the
   workspace hit rate.
3. **stream** — end-to-end stage-1 stream steps of one short
   contrast-scoring :class:`~repro.session.Session` run.
4. **sweep** — a 4-seed multi-seed sweep, serial vs.
   ``workers=4`` through :mod:`repro.experiments.parallel`.
5. **backends** — the ``numpy`` reference vs. the ``fused`` inference
   backend (:mod:`repro.nn.backend`) on batched scoring and on
   end-to-end stream steps, same components and inputs.
6. **fleet** — rounds/sec of a small device fleet
   (:mod:`repro.fleet`), serial vs. ``--workers`` fan-out of the
   per-round device jobs, with the bitwise serial/parallel agreement
   recorded.
7. **serve** — the micro-batching scoring service (:mod:`repro.serve`):
   sustained samples/sec and p99 latency of a concurrent request
   stream, micro-batched vs. request-at-a-time throughput, cache-cold
   vs. cache-warm repeat scoring, and the bitwise replay-determinism
   contract (``decisions_identical``).
8. **wire** — the transport codecs (:mod:`repro.experiments.wire`):
   encode+decode round-trip of a fixed-size synthetic state payload
   under every registered wire format, plus the delta codec's
   steady-state resend with one changed array.
9. **population** — a population-scale fleet round (client sampling,
   seeded fault plan, ``fedavg-async``, ``delta-q8`` transport):
   sampled-device throughput with the serial==parallel fingerprint
   recorded, plus the compressed-delta codecs' steady-state resend
   sizes against the lossless ``delta`` baseline (compression ratios).
10. **obs** — the telemetry layer's own cost (:mod:`repro.obs`): the
    same stream steps with metrics recording enabled vs disabled;
    ``overhead_ratio`` is the per-step price of leaving observability
    on, and must stay within 5%.

The sweep and fleet sections warm the persistent
:class:`~repro.experiments.pool.WorkerPool` before the timed parallel
pass and record the per-stage breakdown
(serialize/transport/compute/merge) the engine measures.

Honors ``REPRO_BENCH_SCALE`` (stream lengths and repeat counts) and
``REPRO_BENCH_SEED``.  Run from anywhere::

    REPRO_BENCH_SCALE=0.1 python benchmarks/bench_perf_suite.py

Writes ``BENCH_perf.json`` into the repository root by default
(``--output`` overrides).  Speedups are wall-clock ratios measured on
this machine; ``meta.cpu_count`` records how many cores the sweep
comparison had to work with.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.core.scoring import ContrastScorer
from repro.experiments.config import bench_scale, bench_seed, default_config
from repro.experiments.multi_seed import run_multi_seed
from repro.nn import functional as F
from repro.nn.backend import use_backend
from repro.nn.im2col import default_workspace
from repro.nn.tensor import Tensor, no_grad
from repro.session import Session, build_components

BENCH_VERSION = 7


def _warm_pool(workers: int) -> None:
    """Fork the persistent worker pool outside any timed section, so the
    parallel timings below measure steady-state dispatch (the pool is
    what fleet rounds and repeated sweeps actually reuse), not one-time
    process startup."""
    from repro.experiments.pool import POOL_UNAVAILABLE_ERRORS, get_worker_pool

    try:
        get_worker_pool(workers).warm()
    except POOL_UNAVAILABLE_ERRORS:
        pass


def _time(fn: Callable[[], object], repeats: int, warmup: int = 1) -> Dict[str, float]:
    """Best-of / mean wall seconds of ``fn()`` over ``repeats`` calls."""
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "mean_s": float(np.mean(samples)),
        "best_s": float(min(samples)),
        "repeats": repeats,
    }


def bench_scoring(scale: float, seed: int) -> Dict[str, object]:
    """Batched scorer vs the per-sample reference (executable spec)."""
    config = default_config(seed=seed)
    comp = build_components(config)
    rng = comp.rngs.get("bench-scoring")
    batch = 64
    labels = rng.integers(0, comp.dataset.num_classes, size=batch)
    images = comp.dataset.sample(labels, rng)
    scorer: ContrastScorer = comp.scorer

    repeats = max(1, int(round(2 * scale)))
    loop = _time(lambda: scorer.score_loop(images), repeats=repeats)
    batched = _time(lambda: scorer.score(images), repeats=max(3, 3 * repeats))
    return {
        "batch": batch,
        "loop": loop,
        "batched": batched,
        "speedup": loop["best_s"] / batched["best_s"],
    }


def bench_conv(scale: float, seed: int) -> Dict[str, object]:
    """Conv forward/backward and the no_grad workspace-reuse path."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(32, 12, 12, 12)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.normal(size=(24, 12, 3, 3)).astype(np.float32), requires_grad=True)
    repeats = max(5, int(round(20 * scale)))

    def forward_grad():
        return F.conv2d(x, w, stride=1, padding=1)

    def forward_nograd():
        with no_grad():
            return F.conv2d(x, w, stride=1, padding=1)

    def forward_backward():
        x.zero_grad()
        w.zero_grad()
        F.conv2d(x, w, stride=1, padding=1).sum().backward()

    ws = default_workspace()
    ws.clear()
    fwd_nograd = _time(forward_nograd, repeats=repeats)
    workspace_stats = ws.stats()
    fwd_grad = _time(forward_grad, repeats=repeats)
    fwd_bwd = _time(forward_backward, repeats=repeats)
    return {
        "input": list(x.shape),
        "weight": list(w.shape),
        "forward_grad": fwd_grad,
        "forward_nograd": fwd_nograd,
        "forward_backward": fwd_bwd,
        "workspace": workspace_stats,
    }


def bench_stream(scale: float, seed: int) -> Dict[str, object]:
    """End-to-end stage-1 steps of a short contrast-scoring run."""
    config = default_config(seed=seed).with_(
        total_samples=max(32 * 8, int(round(1024 * scale))),
        probe_epochs=5,
    )
    session = Session.from_config(config, policy="contrast-scoring").with_eval_points(1)
    result = session.run()
    return {
        "iterations": config.iterations,
        "mean_select_s": result.mean_select_seconds,
        "mean_train_s": result.mean_train_seconds,
        "mean_step_s": result.mean_select_seconds + result.mean_train_seconds,
        "relative_batch_time": result.relative_batch_time,
        "wall_s": result.wall_seconds,
    }


def bench_obs(scale: float, seed: int) -> Dict[str, object]:
    """Instrumentation overhead: stream steps with metrics on vs off.

    Same session shape as the stream section; the only difference is
    ``config.obs``.  The registry's hot-path design (instruments
    resolved once outside the loop, a single bool check when disabled)
    must keep the per-step overhead within 5% — ``--check`` enforces
    the ratio, and ``metrics_recorded`` confirms the enabled pass
    really recorded (a silently-off gate would measure nothing).
    """
    from repro.obs import metrics, reset_metrics

    config = default_config(seed=seed).with_(
        total_samples=max(32 * 8, int(round(1024 * scale))),
        probe_epochs=5,
    )
    repeats = max(3, int(round(5 * scale)))

    def mean_step(obs: bool) -> float:
        session = Session.from_config(
            config.with_(obs=obs), policy="contrast-scoring"
        ).with_eval_points(1)
        run = session.run()
        return run.mean_select_seconds + run.mean_train_seconds

    reset_metrics()
    mean_step(False)  # warmup (BLAS, im2col workspaces)
    best = {}
    for obs in (False, True):
        best[obs] = min(mean_step(obs) for _ in range(repeats))
    steps = metrics().value("session.steps", policy="contrast-scoring")
    reset_metrics()
    return {
        "iterations": config.iterations,
        "repeats": repeats,
        "step_off_s": best[False],
        "step_on_s": best[True],
        "overhead_ratio": best[True] / best[False],
        "metrics_recorded": bool(steps),
    }


def bench_sweep(scale: float, seed: int, workers: int = 4) -> Dict[str, object]:
    """4-seed multi-seed sweep: serial vs process-parallel."""
    config = default_config(seed=seed).with_(
        image_size=10,
        encoder_widths=(8, 16),
        projection_dim=16,
        buffer_size=16,
        # floor of 16 iterations so per-run work dominates worker startup
        # even at the CI smoke scale (otherwise the speedup measures fork
        # overhead, not the engine)
        total_samples=max(16 * 16, int(round(512 * scale))),
        probe_train_per_class=10,
        probe_test_per_class=5,
        probe_epochs=5,
    )
    seeds = tuple(range(seed, seed + 4))
    kwargs = dict(policies=("contrast-scoring",), seeds=seeds)

    t0 = time.perf_counter()
    serial = run_multi_seed(config, workers=1, **kwargs)
    serial_s = time.perf_counter() - t0

    _warm_pool(workers)
    t0 = time.perf_counter()
    parallel = run_multi_seed(config, workers=workers, **kwargs)
    parallel_s = time.perf_counter() - t0

    agree = (
        serial.aggregates["contrast-scoring"].accuracies
        == parallel.aggregates["contrast-scoring"].accuracies
    )
    return {
        "seeds": list(seeds),
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "results_identical": bool(agree),
        "timings": parallel.timings,
    }


def bench_backends(scale: float, seed: int) -> Dict[str, object]:
    """numpy vs fused backend: batched scoring and stream-step timing.

    Same components, same inputs; only the execution backend changes.
    ``scoring_max_abs_diff`` records the cross-backend score agreement
    (float32-forward tolerance, not bitwise).
    """
    config = default_config(seed=seed)
    comp = build_components(config)
    rng = comp.rngs.get("bench-backends")
    batch = 64
    labels = rng.integers(0, comp.dataset.num_classes, size=batch)
    images = comp.dataset.sample(labels, rng)
    scorer: ContrastScorer = comp.scorer
    repeats = max(3, int(round(6 * scale)))

    result: Dict[str, object] = {"batch": batch}
    scores: Dict[str, object] = {}
    for name in ("numpy", "fused"):
        with use_backend(name):
            result[f"scoring_{name}"] = _time(
                lambda: scorer.score(images), repeats=repeats
            )
            scores[name] = scorer.score(images)
    result["scoring_speedup"] = (
        result["scoring_numpy"]["best_s"] / result["scoring_fused"]["best_s"]
    )
    result["scoring_max_abs_diff"] = float(
        np.abs(scores["numpy"] - scores["fused"]).max()
    )

    stream_config = config.with_(
        total_samples=max(32 * 6, int(round(768 * scale))), probe_epochs=5
    )
    for name in ("numpy", "fused"):
        run = (
            Session.from_config(stream_config.with_(backend=name))
            .with_eval_points(1)
            .run()
        )
        result[f"stream_{name}"] = {
            "mean_select_s": run.mean_select_seconds,
            "mean_train_s": run.mean_train_seconds,
            "mean_step_s": run.mean_select_seconds + run.mean_train_seconds,
            "final_accuracy": run.final_accuracy,
        }
    result["stream_step_speedup"] = (
        result["stream_numpy"]["mean_step_s"] / result["stream_fused"]["mean_step_s"]
    )
    return result


def bench_fleet(scale: float, seed: int, workers: int = 4) -> Dict[str, object]:
    """Small-fleet rounds/sec: serial vs parallel device fan-out.

    4 devices x 2 rounds of the fleet engine; the per-round device jobs
    cross :func:`repro.experiments.parallel.run_jobs`, so the parallel
    run must be bitwise-identical to the serial one
    (``results_identical``).
    """
    from repro.experiments.fleet import run_fleet

    config = default_config(seed=seed).with_(
        image_size=10,
        encoder_widths=(8, 16),
        projection_dim=16,
        buffer_size=16,
        # floor of 16 iterations per device so local training dominates
        # worker startup at the CI smoke scale (same rationale as the
        # sweep section).
        total_samples=max(16 * 16, int(round(512 * scale))),
        probe_train_per_class=10,
        probe_test_per_class=5,
        probe_epochs=5,
    )
    devices, rounds = 4, 2
    kwargs = dict(devices=devices, rounds=rounds, aggregator="fedavg")

    t0 = time.perf_counter()
    serial = run_fleet(config, workers=1, **kwargs)
    serial_s = time.perf_counter() - t0

    _warm_pool(workers)
    t0 = time.perf_counter()
    parallel = run_fleet(config, workers=workers, **kwargs)
    parallel_s = time.perf_counter() - t0

    # Per-stage totals over every round the engine measured.
    stage_totals: Dict[str, float] = {}
    for entry in parallel.fleet.timings:
        for key in ("serialize_s", "transport_s", "compute_s", "merge_s", "wall_s"):
            stage_totals[key] = stage_totals.get(key, 0.0) + entry.get(key, 0.0)
    return {
        "devices": devices,
        "rounds": rounds,
        "workers": workers,
        "wire_format": parallel.fleet.wire_format,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "serial_rounds_per_s": rounds / serial_s,
        "parallel_rounds_per_s": rounds / parallel_s,
        "speedup": serial_s / parallel_s,
        "results_identical": serial.fingerprint() == parallel.fingerprint(),
        "timings": stage_totals,
    }


def bench_serve(scale: float, seed: int) -> Dict[str, object]:
    """Micro-batching scoring service vs request-at-a-time serving.

    Two uncached servers that differ only in ``max_batch`` score the
    same request stream: one micro-batches a concurrent stream
    (``score_stream``), the other handles it request-at-a-time
    (``score_sequential``, every forward a batch of one).  Both get a
    warmup pass and best-of timing, so ``batched_speedup`` is the
    batching benefit alone.  A third, cached server measures the
    cache-cold pass vs the fully warm repeat (``warm_speedup``), and
    re-running its stream on a freshly built server must reproduce
    every decision fingerprint bitwise (``decisions_identical``).
    """
    import asyncio

    from repro.fleet.coordinator import MODEL_PREFIXES
    from repro.serve import EmbeddingCache, InprocClient, ModelRegistry, ScoringServer

    config = default_config(seed=seed)
    comp = build_components(config)
    rng = comp.rngs.get("bench-serve")
    requests = max(64, int(round(256 * scale)))
    max_batch = 32
    repeats = 3
    labels = rng.integers(0, comp.dataset.num_classes, size=requests)
    images = comp.dataset.sample(labels, rng)
    samples = list(images)

    models = ModelRegistry()
    state = {}
    for prefix, module in zip(MODEL_PREFIXES, (comp.scorer.encoder, comp.scorer.projector)):
        for key, value in module.state_dict().items():
            state[prefix + key] = value
    models.publish(state, source="bench")

    def make_server(**overrides):
        fresh = build_components(config)
        kwargs = dict(
            max_batch=max_batch,
            max_wait_ms=0.0,  # drain opportunistically; no straggler wait
            queue_depth=requests,
            cache=None,
        )
        kwargs.update(overrides)
        return ScoringServer(fresh.scorer, models, **kwargs)

    def best_of(server, method_name):
        """Warmup pass + best-of-``repeats`` wall time of one stream pass."""

        async def drive():
            async with server:
                client = InprocClient(server)
                method = getattr(client, method_name)
                await method(samples)  # warmup (BLAS, im2col workspaces)
                best = None
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    await method(samples)
                    elapsed = time.perf_counter() - t0
                    best = elapsed if best is None else min(best, elapsed)
                return best

        return asyncio.run(drive())

    unbatched_s = best_of(make_server(max_batch=1), "score_sequential")
    batched_s = best_of(make_server(), "score_stream")

    # cache-cold pass vs the fully warm repeat, on a cached server
    server = make_server(cache=EmbeddingCache(2 * requests))

    async def cold_and_warm():
        async with server:
            client = InprocClient(server)
            t0 = time.perf_counter()
            cold = await client.score_stream(samples)
            cold_s = time.perf_counter() - t0
            warm, warm_s = None, None
            for _ in range(repeats):  # repeats never invalidate the cache
                t0 = time.perf_counter()
                warm = await client.score_stream(samples)
                elapsed = time.perf_counter() - t0
                warm_s = elapsed if warm_s is None else min(warm_s, elapsed)
            return cold, cold_s, warm, warm_s

    cold, cold_s, warm, warm_s = asyncio.run(cold_and_warm())
    stats = server.stats()
    latencies = np.asarray([d.latency_ms for d in cold])

    # determinism: the identical stream on a freshly built cached server
    # must reproduce every decision bitwise (scores, verdicts, versions)
    async def replay_stream(replay_server):
        async with replay_server:
            return await InprocClient(replay_server).score_stream(samples)

    replay = asyncio.run(replay_stream(make_server(cache=EmbeddingCache(2 * requests))))
    decisions_identical = [d.fingerprint() for d in cold] == [
        d.fingerprint() for d in replay
    ]

    return {
        "requests": requests,
        "max_batch": max_batch,
        "unbatched_s": unbatched_s,
        "unbatched_samples_per_s": requests / unbatched_s,
        "batched_s": batched_s,
        "batched_samples_per_s": requests / batched_s,
        "batched_speedup": unbatched_s / batched_s,
        "p50_ms": float(np.percentile(latencies, 50)),
        "p99_ms": float(np.percentile(latencies, 99)),
        "mean_batch": stats["mean_batch"],
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_samples_per_s": requests / warm_s,
        "warm_speedup": cold_s / warm_s,
        "warm_all_hits": all(d.cache_hit for d in warm),
        "decisions_identical": decisions_identical,
    }


def bench_wire(scale: float, seed: int) -> Dict[str, object]:
    """Transport codecs on a fixed-size synthetic state payload.

    Encode+decode round-trip of a multi-megabyte float32/float64/int64
    array dict under every registered wire format (each measured on a
    fresh codec instance), plus the delta codec's steady-state resend —
    one changed array out of the set — which is its actual fleet-round
    workload.  ``shm_vs_json_speedup`` is the zero-copy win the ``shm``
    path must keep delivering over the base64-JSON reference.
    """
    from repro.experiments.wire import create_wire_format, shm_available
    from repro.registry import WIRE_FORMATS

    rng = np.random.default_rng(seed)
    arrays = 8
    # ~8 MB total at scale 1 (floor 1 MB so the smoke scale still
    # measures copies, not per-call overhead)
    elems = max(1 << 15, int(round((1 << 18) * scale)))
    state = {
        f"layer{i}.weight": rng.normal(size=elems).astype(
            np.float32 if i % 4 else np.float64
        )
        for i in range(arrays)
    }
    state["step"] = np.asarray(12345, dtype=np.int64)
    payload_bytes = int(sum(a.nbytes for a in state.values()))
    repeats = max(3, int(round(6 * scale)))

    result: Dict[str, object] = {
        "arrays": len(state),
        "payload_bytes": payload_bytes,
        "shm_available": shm_available(),
    }
    for name in sorted(WIRE_FORMATS.names()):
        if name == "shm" and not shm_available():
            continue

        def round_trip(fmt_name=name):
            codec = create_wire_format(fmt_name)
            decoded = codec.decode(codec.encode(state, channel="bench"))
            return decoded

        result[name] = _time(round_trip, repeats=repeats)

    # Delta steady state: the sender has already broadcast once and only
    # one array changed — the per-round shape of a converging fleet.
    codec = create_wire_format("delta")
    codec.decode(codec.encode(state, channel="bench"), channel="bench")
    changed = dict(state)

    def delta_resend():
        # mutate exactly one array each pass so every resend genuinely
        # ships one changed payload (not a zero-delta no-op)
        changed["layer0.weight"] = changed["layer0.weight"] + 1.0
        payload = codec.encode(changed, channel="bench")
        codec.decode(payload, channel="bench")

    result["delta_resend"] = _time(delta_resend, repeats=repeats)
    if "shm" in result:
        result["shm_vs_json_speedup"] = (
            result["json-b64"]["best_s"] / result["shm"]["best_s"]
        )
    return result


def bench_population(scale: float, seed: int, workers: int = 4) -> Dict[str, object]:
    """Population-scale fleet round plus compressed-codec resend sizes.

    A roster far larger than the per-round cast (client sampling),
    seeded dropout/straggler chaos, staleness-weighted aggregation, and
    the ``delta-q8`` transport — the ISSUE 9 configuration.  Throughput
    is ``sampled_devices_per_s`` (device-rounds actually trained per
    wall second); ``results_identical`` records the serial==parallel
    fingerprint agreement under the lossy codec (both ends run the same
    quantization arithmetic, so it must hold).

    The codec half measures the steady-state incremental resend — the
    per-round broadcast of a converging fleet — through each delta
    codec over a ``json-b64`` inner (JSON-measurable bytes), reporting
    compression ratios against the lossless ``delta`` send.
    """
    from repro.fleet import DeviceSpec, FleetConfig, FleetCoordinator
    from repro.fleet.faults import DeviceFaults, FaultPlan
    from repro.registry import WIRE_FORMATS

    devices = max(40, int(round(400 * scale)))
    participants = max(4, devices // 10)
    rounds = 2
    plan = FaultPlan(
        seed=seed,
        default=DeviceFaults(dropout_prob=0.1),
        overrides=((1, DeviceFaults(straggler_delay_s=2.5)),),
    )
    config = default_config(seed=seed).with_(
        image_size=10,
        encoder_widths=(8, 16),
        projection_dim=16,
        buffer_size=16,
        total_samples=max(16 * 16, int(round(512 * scale))),
        probe_train_per_class=10,
        probe_test_per_class=5,
        probe_epochs=5,
        fleet=FleetConfig(
            devices=tuple(DeviceSpec() for _ in range(devices)),
            rounds=rounds,
            participants=participants,
            sampler="round-robin",
            round_deadline_s=1.0,
            fault_plan=plan,
        ),
        aggregator="fedavg-async",
    )

    t0 = time.perf_counter()
    serial = FleetCoordinator(config, workers=1, wire_format="delta-q8").run()
    serial_s = time.perf_counter() - t0

    _warm_pool(workers)
    t0 = time.perf_counter()
    parallel = FleetCoordinator(
        config, workers=workers, wire_format="delta-q8"
    ).run()
    parallel_s = time.perf_counter() - t0

    trained = sum(len(stats.devices) for stats in parallel.rounds)
    result: Dict[str, object] = {
        "devices": devices,
        "participants": participants,
        "rounds": rounds,
        "workers": workers,
        "wire_format": "delta-q8",
        "trained_device_rounds": trained,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "sampled_devices_per_s": trained / parallel_s,
        "speedup": serial_s / parallel_s,
        "results_identical": serial.fingerprint() == parallel.fingerprint(),
    }

    # Compressed-codec resend sizes: same synthetic model state through
    # each delta codec (json-b64 inner so the payload is JSON-measurable),
    # first send establishing the base, second send the steady-state
    # incremental broadcast whose bytes a fleet round actually pays.
    rng = np.random.default_rng(seed)
    base = {
        f"encoder/layer{i}.weight": rng.normal(size=1 << 14).astype(np.float32)
        for i in range(4)
    }
    bumped = {
        key: (value + rng.normal(size=value.shape).astype(np.float32) * 0.01)
        for key, value in base.items()
    }
    sizes: Dict[str, int] = {}
    for name in ("delta", "delta-q8", "delta-topk"):
        codec = WIRE_FORMATS.create(name, inner="json-b64")
        codec.decode(codec.encode(base, channel="bench"), channel="bench")
        payload = codec.encode(bumped, channel="bench")
        sizes[name] = len(json.dumps(payload))
        codec.decode(payload, channel="bench")
    result["resend_bytes"] = sizes
    result["q8_compression_ratio"] = sizes["delta"] / sizes["delta-q8"]
    result["topk_compression_ratio"] = sizes["delta"] / sizes["delta-topk"]
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_perf.json"),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="parallel sweep worker count"
    )
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="skip the (slowest) serial-vs-parallel sweep section",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when a speedup regresses below its floor: "
        "batched scoring >= 1.3x, fused-backend scoring >= 1.5x over "
        "numpy, serve micro-batching >= 2x over unbatched with a >= 5x "
        "warm cache and bitwise-identical replay decisions, sweep and "
        "fleet results identical to serial, shm codec >= 1.5x over "
        "json-b64 on the synthetic payload, on machines with >= 2 "
        "logical CPUs sweep and fleet speedups >= 1.2x over serial, and "
        "on machines with >= 4 logical CPUs sweep speedup >= 1.5x "
        "(headroom under the 2x multi-core target, since logical CPUs "
        "overstate physical cores), population fleet serial==parallel "
        "bitwise under delta-q8 with >= 1 sampled device-round/s, and "
        "compressed-delta resends >= 3x (q8) / >= 2.5x (topk) smaller "
        "than the lossless delta resend, and metrics-enabled stream "
        "steps <= 5% slower than disabled",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    seed = bench_seed()
    report: Dict[str, object] = {
        "version": BENCH_VERSION,
        "meta": {
            "scale": scale,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "unix_time": time.time(),
        },
    }

    print(f"perf suite: scale={scale} seed={seed} cpus={os.cpu_count()}")
    t0 = time.perf_counter()
    report["scoring"] = bench_scoring(scale, seed)
    print(
        "  scoring: batched {:.4f}s vs loop {:.4f}s -> {:.2f}x".format(
            report["scoring"]["batched"]["best_s"],
            report["scoring"]["loop"]["best_s"],
            report["scoring"]["speedup"],
        )
    )
    report["conv"] = bench_conv(scale, seed)
    print(
        "  conv: fwd(grad) {:.5f}s  fwd(no_grad) {:.5f}s  fwd+bwd {:.5f}s  "
        "workspace hit rate {:.0%}".format(
            report["conv"]["forward_grad"]["best_s"],
            report["conv"]["forward_nograd"]["best_s"],
            report["conv"]["forward_backward"]["best_s"],
            report["conv"]["workspace"]["hit_rate"],
        )
    )
    report["stream"] = bench_stream(scale, seed)
    print(
        "  stream: {:.4f}s/step over {} iterations".format(
            report["stream"]["mean_step_s"], report["stream"]["iterations"]
        )
    )
    report["obs"] = bench_obs(scale, seed)
    print(
        "  obs: step {:.4f}s off vs {:.4f}s on -> {:.3f}x overhead "
        "(recorded={})".format(
            report["obs"]["step_off_s"],
            report["obs"]["step_on_s"],
            report["obs"]["overhead_ratio"],
            report["obs"]["metrics_recorded"],
        )
    )
    report["backends"] = bench_backends(scale, seed)
    print(
        "  backends: scoring numpy {:.4f}s vs fused {:.4f}s -> {:.2f}x; "
        "stream step {:.4f}s vs {:.4f}s -> {:.2f}x".format(
            report["backends"]["scoring_numpy"]["best_s"],
            report["backends"]["scoring_fused"]["best_s"],
            report["backends"]["scoring_speedup"],
            report["backends"]["stream_numpy"]["mean_step_s"],
            report["backends"]["stream_fused"]["mean_step_s"],
            report["backends"]["stream_step_speedup"],
        )
    )
    report["wire"] = bench_wire(scale, seed)
    wire = report["wire"]
    shm_note = (
        "shm {:.4f}s -> {:.2f}x over json-b64; ".format(
            wire["shm"]["best_s"], wire["shm_vs_json_speedup"]
        )
        if "shm" in wire
        else "shm unavailable; "
    )
    print(
        "  wire: {:.1f} MB payload, json-b64 {:.4f}s; {}delta resend "
        "{:.4f}s".format(
            wire["payload_bytes"] / 1e6,
            wire["json-b64"]["best_s"],
            shm_note,
            wire["delta_resend"]["best_s"],
        )
    )
    report["serve"] = bench_serve(scale, seed)
    print(
        "  serve: batched {:.0f} samples/s vs unbatched {:.0f} -> {:.2f}x; "
        "warm cache {:.2f}x; p99 {:.1f}ms (identical={})".format(
            report["serve"]["batched_samples_per_s"],
            report["serve"]["unbatched_samples_per_s"],
            report["serve"]["batched_speedup"],
            report["serve"]["warm_speedup"],
            report["serve"]["p99_ms"],
            report["serve"]["decisions_identical"],
        )
    )
    if not args.skip_sweep:
        report["sweep"] = bench_sweep(scale, seed, workers=args.workers)
        print(
            "  sweep: serial {:.1f}s vs {} workers {:.1f}s -> {:.2f}x "
            "(identical={})".format(
                report["sweep"]["serial_s"],
                report["sweep"]["workers"],
                report["sweep"]["parallel_s"],
                report["sweep"]["speedup"],
                report["sweep"]["results_identical"],
            )
        )
        timings = report["sweep"].get("timings")
        if timings:
            print(
                "    stages: serialize {:.3f}s transport {:.3f}s compute "
                "{:.3f}s merge {:.3f}s".format(
                    timings.get("serialize_s", 0.0),
                    timings.get("transport_s", 0.0),
                    timings.get("compute_s", 0.0),
                    timings.get("merge_s", 0.0),
                )
            )
        report["fleet"] = bench_fleet(scale, seed, workers=args.workers)
        print(
            "  fleet: {} devices x {} rounds, serial {:.2f} rounds/s vs "
            "{} workers {:.2f} rounds/s -> {:.2f}x (identical={})".format(
                report["fleet"]["devices"],
                report["fleet"]["rounds"],
                report["fleet"]["serial_rounds_per_s"],
                report["fleet"]["workers"],
                report["fleet"]["parallel_rounds_per_s"],
                report["fleet"]["speedup"],
                report["fleet"]["results_identical"],
            )
        )
        timings = report["fleet"].get("timings")
        if timings:
            print(
                "    stages (wire={}): serialize {:.3f}s transport {:.3f}s "
                "compute {:.3f}s merge {:.3f}s".format(
                    report["fleet"]["wire_format"],
                    timings.get("serialize_s", 0.0),
                    timings.get("transport_s", 0.0),
                    timings.get("compute_s", 0.0),
                    timings.get("merge_s", 0.0),
                )
            )
        report["population"] = bench_population(scale, seed, workers=args.workers)
        print(
            "  population: {} devices, K={} x {} rounds -> {:.1f} sampled "
            "devices/s (identical={}); codec resend ratios q8 {:.2f}x "
            "topk {:.2f}x over delta".format(
                report["population"]["devices"],
                report["population"]["participants"],
                report["population"]["rounds"],
                report["population"]["sampled_devices_per_s"],
                report["population"]["results_identical"],
                report["population"]["q8_compression_ratio"],
                report["population"]["topk_compression_ratio"],
            )
        )
    report["total_wall_s"] = time.perf_counter() - t0

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = _check_thresholds(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        if failures:
            return 1
        print("checks passed")
    return 0


def _check_thresholds(report: Dict[str, object]) -> List[str]:
    """Speedup floors the baseline must keep clearing (``--check``)."""
    failures: List[str] = []
    scoring_speedup = report["scoring"]["speedup"]
    if scoring_speedup < 1.3:
        failures.append(
            f"batched scoring speedup {scoring_speedup:.2f}x < 1.3x floor"
        )
    backends = report.get("backends")
    if backends is not None:
        # Single-process compute-bound comparison: CPU-count independent,
        # so the floor is enforced everywhere (ISSUE 3 acceptance bar).
        if backends["scoring_speedup"] < 1.5:
            failures.append(
                "fused-backend scoring speedup "
                f"{backends['scoring_speedup']:.2f}x < 1.5x floor over numpy"
            )
        if backends["scoring_max_abs_diff"] > 1e-4:
            failures.append(
                "numpy/fused score disagreement "
                f"{backends['scoring_max_abs_diff']:.2e} > 1e-4 tolerance"
            )
    cpus = report["meta"]["cpu_count"] or 1
    sweep = report.get("sweep")
    if sweep is not None:
        if not sweep["results_identical"]:
            failures.append("parallel sweep results differ from serial run")
        # os.cpu_count() reports *logical* CPUs; the achievable speedup is
        # bounded by physical cores (often half that on hyperthreaded CI
        # runners), so the enforced floor leaves headroom below the 2x
        # target the JSON reports.
        if cpus >= 4 and sweep["speedup"] < 1.5:
            failures.append(
                f"sweep speedup {sweep['speedup']:.2f}x < 1.5x floor "
                f"on a machine with {cpus} logical CPUs"
            )
        elif cpus >= 2 and sweep["speedup"] < 1.2:
            failures.append(
                f"sweep speedup {sweep['speedup']:.2f}x < 1.2x floor "
                f"on a machine with {cpus} logical CPUs (parallel must "
                "beat serial whenever a second core exists)"
            )
        elif cpus < 2:
            print(
                f"  note: sweep speedup floor not enforced on {cpus} "
                "logical CPU(s) (process parallelism is bounded by "
                "physical cores)"
            )
    fleet = report.get("fleet")
    if fleet is not None:
        # Bitwise contract, CPU-count independent.
        if not fleet["results_identical"]:
            failures.append("parallel fleet results differ from serial run")
        if cpus >= 2 and fleet["speedup"] < 1.2:
            failures.append(
                f"fleet speedup {fleet['speedup']:.2f}x < 1.2x floor "
                f"on a machine with {cpus} logical CPUs (warm-pool device "
                "fan-out must beat serial whenever a second core exists)"
            )
        elif cpus < 2:
            print(
                f"  note: fleet speedup floor not enforced on {cpus} "
                "logical CPU(s)"
            )
    population = report.get("population")
    if population is not None:
        # Bitwise contract, CPU-count independent: both ends of delta-q8
        # run the same quantization arithmetic.
        if not population["results_identical"]:
            failures.append(
                "population fleet (delta-q8) parallel results differ from serial"
            )
        # Generous absolute floor: a sampled population round must never
        # degrade to training slower than 1 device-round per second at
        # the smoke scale (catches accidental O(N) work per skipped
        # device creeping into the coordinator).
        if population["sampled_devices_per_s"] < 1.0:
            failures.append(
                "population throughput "
                f"{population['sampled_devices_per_s']:.2f} sampled "
                "devices/s < 1.0 floor"
            )
        # Codec-only byte counts, machine-independent.
        if population["q8_compression_ratio"] < 3.0:
            failures.append(
                "delta-q8 resend compression "
                f"{population['q8_compression_ratio']:.2f}x < 3x floor over delta"
            )
        if population["topk_compression_ratio"] < 2.5:
            failures.append(
                "delta-topk resend compression "
                f"{population['topk_compression_ratio']:.2f}x < 2.5x floor over delta"
            )
    obs = report.get("obs")
    if obs is not None:
        # Single-process comparison, CPU-count independent: leaving the
        # telemetry layer on must never cost more than 5% per step.
        if obs["overhead_ratio"] > 1.05:
            failures.append(
                "metrics-enabled stream step overhead "
                f"{obs['overhead_ratio']:.3f}x > 1.05x floor over disabled"
            )
        if not obs["metrics_recorded"]:
            failures.append(
                "obs bench recorded no session metrics with obs enabled "
                "(the overhead comparison measured nothing)"
            )
    wire = report.get("wire")
    if wire is not None and "shm_vs_json_speedup" in wire:
        # Codec-only comparison, CPU-count independent: the zero-copy
        # shared-memory path must beat base64-JSON on a multi-MB payload.
        if wire["shm_vs_json_speedup"] < 1.5:
            failures.append(
                "shm codec round-trip "
                f"{wire['shm_vs_json_speedup']:.2f}x < 1.5x floor over json-b64"
            )
    serve = report.get("serve")
    if serve is not None:
        # Single-process comparisons, CPU-count independent (ISSUE 6
        # acceptance bars).
        if serve["batched_speedup"] < 2.0:
            failures.append(
                "serve micro-batched throughput "
                f"{serve['batched_speedup']:.2f}x < 2x floor over unbatched"
            )
        if serve["warm_speedup"] < 5.0:
            failures.append(
                "serve warm-cache repeat scoring "
                f"{serve['warm_speedup']:.2f}x < 5x floor over cold"
            )
        if not serve["decisions_identical"]:
            failures.append(
                "serve decisions not bitwise-identical on a fresh-server replay"
            )
    return failures


if __name__ == "__main__":
    sys.exit(main())
