"""Ablation B: deterministic vs randomized scoring views.

The paper's "Contrast Score Design Principle": the scoring view must be
deterministic (horizontal flip); randomized strong augmentation makes
scores reflect augmentation luck rather than encoder capability.

Expected shape: deterministic scoring has exactly zero variance across
repeated scorings of the same batch; randomized scoring has non-trivial
variance; the deterministic variant trains at least as well.
"""

from conftest import describe

from repro.experiments import (
    default_config,
    format_scoring_view_ablation,
    run_scoring_view_ablation,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_ablation_scoring_views(benchmark, report, run_meta):
    config = scaled_config(
        default_config(seed=bench_seed()).with_(total_samples=2048)
    )
    result = benchmark.pedantic(
        lambda: run_scoring_view_ablation(config),
        rounds=1,
        iterations=1,
    )
    lines = [
        describe("Ablation B — deterministic vs randomized scoring views", run_meta, config)
    ]
    lines.append(format_scoring_view_ablation(result))
    lines.append(
        "\npaper claim (III-B): randomness in the scoring view biases scores; "
        "the deterministic flip gives consistent, objective scores."
    )
    report("\n".join(lines))

    assert result.deterministic_score_std == 0.0
    assert result.randomized_score_std > result.deterministic_score_std
