"""Fig. 6: learning curves on SVHN (a) and CIFAR-100 (b).

Paper shape: Contrast Scoring 89.71% vs 86.66%/85.96% on SVHN, and
50.22% vs 45.40%/42.68% on CIFAR-100 — CS above both baselines on both
datasets along the whole curve.
"""

from conftest import describe

from repro.experiments import (
    default_config,
    format_learning_curves,
    run_learning_curves,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_fig6a_svhn(benchmark, report, run_meta):
    config = scaled_config(
        default_config("svhn", seed=bench_seed()).with_(total_samples=3072)
    )
    result = benchmark.pedantic(
        lambda: run_learning_curves("svhn", config, eval_points=4),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Fig. 6(a) — learning curve, svhn-like", run_meta, config)]
    lines.append(format_learning_curves(result))
    report("\n".join(lines))
    assert all(0.0 <= a <= 1.0 for a in result.final_accuracies().values())


def test_fig6b_cifar100(benchmark, report, run_meta):
    config = scaled_config(
        default_config("cifar100", seed=bench_seed()).with_(
            total_samples=3072,
            probe_train_per_class=12,
            probe_test_per_class=6,
        )
    )
    result = benchmark.pedantic(
        lambda: run_learning_curves("cifar100", config, eval_points=4),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Fig. 6(b) — learning curve, cifar100-like", run_meta, config)]
    lines.append(format_learning_curves(result))
    report("\n".join(lines))
    assert all(0.0 <= a <= 1.0 for a in result.final_accuracies().values())
