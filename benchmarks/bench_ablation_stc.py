"""Ablation C: sweep of the temporal-correlation strength (STC).

Varies the stream's STC over {1, 8, 64, 512} and compares Contrast
Scoring against Random Replace.  Expected shape: near-iid streams
(STC=1) show little difference; the contrast-scoring margin appears and
grows as the stream becomes strongly correlated — the regime the paper
targets.
"""

from conftest import describe

from repro.experiments import (
    default_config,
    format_stc_sweep,
    run_stc_sweep,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_ablation_stc_sweep(benchmark, report, run_meta):
    config = scaled_config(
        default_config(seed=bench_seed()).with_(total_samples=2048)
    )
    result = benchmark.pedantic(
        lambda: run_stc_sweep(config, stc_values=(1, 8, 64, 512)),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Ablation C — STC sweep (cifar10-like)", run_meta, config)]
    lines.append(format_stc_sweep(result))
    lines.append(
        "\nexpected shape: CS margin over Random grows with temporal "
        "correlation strength."
    )
    report("\n".join(lines))

    for stc in result.stc_values:
        for acc in result.accuracy[stc].values():
            assert 0.0 <= acc <= 1.0
