"""Fig. 5: learning curves on ImageNet-20 (a) and ImageNet-50 (b).

Paper shape: Contrast Scoring reaches higher accuracy faster than Random
and FIFO on both subsets (paper: 70.64% / 60.99% top-1, beating the
baselines by ~4-8 points).
"""

from conftest import describe

from repro.experiments import (
    default_config,
    format_learning_curves,
    run_learning_curves,
    scaled_config,
)
from repro.experiments.config import bench_seed


def test_fig5a_imagenet20(benchmark, report, run_meta):
    config = scaled_config(
        default_config("imagenet20", seed=bench_seed()).with_(
            total_samples=3072,
            probe_train_per_class=25,
            probe_test_per_class=12,
            augment_jitter=0.18,
        )
    )
    result = benchmark.pedantic(
        lambda: run_learning_curves("imagenet20", config, eval_points=4),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Fig. 5(a) — learning curve, imagenet20-like", run_meta, config)]
    lines.append(format_learning_curves(result))
    report("\n".join(lines))
    assert all(0.0 <= a <= 1.0 for a in result.final_accuracies().values())


def test_fig5b_imagenet50(benchmark, report, run_meta):
    config = scaled_config(
        default_config("imagenet50", seed=bench_seed()).with_(
            total_samples=3072,
            probe_train_per_class=15,
            probe_test_per_class=8,
            augment_jitter=0.18,
        )
    )
    result = benchmark.pedantic(
        lambda: run_learning_curves("imagenet50", config, eval_points=4),
        rounds=1,
        iterations=1,
    )
    lines = [describe("Fig. 5(b) — learning curve, imagenet50-like", run_meta, config)]
    lines.append(format_learning_curves(result))
    report("\n".join(lines))
    assert all(0.0 <= a <= 1.0 for a in result.final_accuracies().values())
