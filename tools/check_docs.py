"""Docs-consistency checker: registries and docs cannot drift apart.

Asserts, in both directions:

* every experiment id (``repro.cli.EXPERIMENTS``), backend
  (``BACKENDS``), and scenario (``SCENARIOS``) appears in the matching
  ``<!-- inventory:KIND -->`` block of docs/API.md, and every name
  listed there is actually registered;
* every registered scenario has a ``## `name` `` section in
  docs/SCENARIOS.md, and every such section names a registered
  scenario.

Run from the repo root (CI does)::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 means consistent; 1 prints every mismatch found.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List, Set

ROOT = pathlib.Path(__file__).resolve().parent.parent
API_MD = ROOT / "docs" / "API.md"
SCENARIOS_MD = ROOT / "docs" / "SCENARIOS.md"

INVENTORY_RE = re.compile(
    r"<!--\s*inventory:([a-z-]+)\s*-->(.*?)<!--\s*/inventory\s*-->", re.S
)
BACKTICKED_RE = re.compile(r"`([a-z0-9]+(?:-[a-z0-9]+)*)`")
SCENARIO_SECTION_RE = re.compile(r"^## `([a-z0-9-]+)`", re.M)


def parse_inventories(text: str) -> Dict[str, Set[str]]:
    """Inventory-block name sets of an API.md-style document."""
    inventories: Dict[str, Set[str]] = {}
    for kind, body in INVENTORY_RE.findall(text):
        inventories[kind] = set(BACKTICKED_RE.findall(body))
    return inventories


def registered_names() -> Dict[str, Set[str]]:
    """The live registry contents the docs must mirror."""
    from repro.cli import EXPERIMENTS
    from repro.registry import BACKENDS, SCENARIOS

    return {
        "experiments": set(EXPERIMENTS),
        "backends": set(BACKENDS.names()),
        "scenarios": set(SCENARIOS.names()),
    }


def check() -> List[str]:
    """Every mismatch found (empty = consistent)."""
    problems: List[str] = []
    api_text = API_MD.read_text()
    inventories = parse_inventories(api_text)
    for kind, registered in registered_names().items():
        documented = inventories.get(kind)
        if documented is None:
            problems.append(
                f"docs/API.md has no <!-- inventory:{kind} --> block"
            )
            continue
        for name in sorted(registered - documented):
            problems.append(
                f"{kind}: {name!r} is registered but missing from the "
                "docs/API.md inventory"
            )
        for name in sorted(documented - registered):
            problems.append(
                f"{kind}: {name!r} is listed in the docs/API.md inventory "
                "but not registered"
            )

    scenario_text = SCENARIOS_MD.read_text()
    sections = set(SCENARIO_SECTION_RE.findall(scenario_text))
    from repro.registry import SCENARIOS

    registered_scenarios = set(SCENARIOS.names())
    for name in sorted(registered_scenarios - sections):
        problems.append(
            f"scenario {name!r} is registered but has no '## `{name}`' "
            "section in docs/SCENARIOS.md"
        )
    for name in sorted(sections - registered_scenarios):
        problems.append(
            f"docs/SCENARIOS.md documents scenario {name!r}, which is "
            "not registered"
        )
    return problems


def main() -> int:
    problems = check()
    if problems:
        for problem in problems:
            print(f"docs-consistency: {problem}", file=sys.stderr)
        return 1
    print("docs-consistency: registries and docs agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
