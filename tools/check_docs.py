"""Docs-consistency checker: registries and docs cannot drift apart.

Asserts, in both directions:

* every experiment id (``repro.cli.EXPERIMENTS``), backend
  (``BACKENDS``), scenario (``SCENARIOS``), scenario wrapper
  (``scenario_wrapper_names()``), aggregator (``AGGREGATORS``), serve
  admission policy (``SERVE_POLICIES``), wire format
  (``WIRE_FORMATS``), and metrics exporter (``EXPORTERS``) appears in
  the matching ``<!-- inventory:KIND -->`` block of docs/API.md, and
  every name listed there is actually registered;
* every metric name in ``repro.obs.METRIC_INVENTORY`` appears in the
  ``<!-- inventory:metrics -->`` block of docs/OBSERVABILITY.md, and
  every dotted name listed there is in the code inventory;
* every registered scenario has a ``## `name` `` section in
  docs/SCENARIOS.md, and every such section names a registered
  scenario;
* every registered aggregator and client sampler has a ``## `name` ``
  section in docs/FLEET.md, and every such section names a registered
  aggregator or client sampler;
* every registered serve admission policy has a ``## `name` ``
  section in docs/SERVE.md, and every such section names a registered
  serve policy.

Run from the repo root (CI does)::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 means consistent; 1 prints every mismatch found.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List, Set

ROOT = pathlib.Path(__file__).resolve().parent.parent
API_MD = ROOT / "docs" / "API.md"
SCENARIOS_MD = ROOT / "docs" / "SCENARIOS.md"
FLEET_MD = ROOT / "docs" / "FLEET.md"
SERVE_MD = ROOT / "docs" / "SERVE.md"
OBSERVABILITY_MD = ROOT / "docs" / "OBSERVABILITY.md"

INVENTORY_RE = re.compile(
    r"<!--\s*inventory:([a-z-]+)\s*-->(.*?)<!--\s*/inventory\s*-->", re.S
)
BACKTICKED_RE = re.compile(r"`([a-z0-9]+(?:-[a-z0-9]+)*)`")
#: Metric names are dotted (``fleet.bytes_sent``), unlike kebab-case
#: component names, so the metrics inventory uses its own pattern.
METRIC_NAME_RE = re.compile(r"`([a-z]+(?:\.[a-z0-9_]+)+)`")
SECTION_RE = re.compile(r"^## `([a-z0-9-]+)`", re.M)
SCENARIO_SECTION_RE = SECTION_RE  # kept: pre-fleet name of the pattern


def parse_inventories(text: str) -> Dict[str, Set[str]]:
    """Inventory-block name sets of an API.md-style document."""
    inventories: Dict[str, Set[str]] = {}
    for kind, body in INVENTORY_RE.findall(text):
        inventories[kind] = set(BACKTICKED_RE.findall(body))
    return inventories


def registered_names() -> Dict[str, Set[str]]:
    """The live registry contents the docs must mirror."""
    from repro.cli import EXPERIMENTS
    from repro.registry import (
        AGGREGATORS,
        BACKENDS,
        CLIENT_SAMPLERS,
        EXPORTERS,
        SCENARIOS,
        SERVE_POLICIES,
        WIRE_FORMATS,
        scenario_wrapper_names,
    )

    return {
        "experiments": set(EXPERIMENTS),
        "backends": set(BACKENDS.names()),
        "scenarios": set(SCENARIOS.names()),
        "scenario-wrappers": set(scenario_wrapper_names()),
        "aggregators": set(AGGREGATORS.names()),
        "client-samplers": set(CLIENT_SAMPLERS.names()),
        "serve-policies": set(SERVE_POLICIES.names()),
        "wire-formats": set(WIRE_FORMATS.names()),
        "exporters": set(EXPORTERS.names()),
    }


def check() -> List[str]:
    """Every mismatch found (empty = consistent)."""
    problems: List[str] = []
    api_text = API_MD.read_text()
    inventories = parse_inventories(api_text)
    for kind, registered in registered_names().items():
        documented = inventories.get(kind)
        if documented is None:
            problems.append(
                f"docs/API.md has no <!-- inventory:{kind} --> block"
            )
            continue
        for name in sorted(registered - documented):
            problems.append(
                f"{kind}: {name!r} is registered but missing from the "
                "docs/API.md inventory"
            )
        for name in sorted(documented - registered):
            problems.append(
                f"{kind}: {name!r} is listed in the docs/API.md inventory "
                "but not registered"
            )

    from repro.registry import (
        AGGREGATORS,
        CLIENT_SAMPLERS,
        SCENARIOS,
        SERVE_POLICIES,
    )

    problems += _check_sections(
        SCENARIOS_MD, "scenario", set(SCENARIOS.names())
    )
    problems += _check_sections(
        FLEET_MD,
        "aggregator/client sampler",
        set(AGGREGATORS.names()) | set(CLIENT_SAMPLERS.names()),
    )
    problems += _check_sections(
        SERVE_MD, "serve policy", set(SERVE_POLICIES.names())
    )
    problems += _check_metric_inventory()
    return problems


def _check_metric_inventory() -> List[str]:
    """docs/OBSERVABILITY.md's metric table must mirror
    ``repro.obs.METRIC_INVENTORY`` in both directions."""
    from repro.obs import METRIC_INVENTORY

    if not OBSERVABILITY_MD.exists():
        return ["docs/OBSERVABILITY.md is missing"]
    problems: List[str] = []
    inventoried = set(METRIC_INVENTORY)
    blocks = dict(INVENTORY_RE.findall(OBSERVABILITY_MD.read_text()))
    body = blocks.get("metrics")
    if body is None:
        return ["docs/OBSERVABILITY.md has no <!-- inventory:metrics --> block"]
    documented = set(METRIC_NAME_RE.findall(body))
    for name in sorted(inventoried - documented):
        problems.append(
            f"metric: {name!r} is in repro.obs.METRIC_INVENTORY but "
            "missing from the docs/OBSERVABILITY.md inventory"
        )
    for name in sorted(documented - inventoried):
        problems.append(
            f"metric: {name!r} is listed in the docs/OBSERVABILITY.md "
            "inventory but not in repro.obs.METRIC_INVENTORY"
        )
    return problems


def _check_sections(
    doc: pathlib.Path, kind: str, registered: Set[str]
) -> List[str]:
    """Per-component ``## `name` `` sections must mirror a registry."""
    problems: List[str] = []
    if not doc.exists():
        return [f"{doc.relative_to(ROOT)} is missing"]
    sections = set(SECTION_RE.findall(doc.read_text()))
    for name in sorted(registered - sections):
        problems.append(
            f"{kind} {name!r} is registered but has no '## `{name}`' "
            f"section in {doc.relative_to(ROOT)}"
        )
    for name in sorted(sections - registered):
        problems.append(
            f"{doc.relative_to(ROOT)} documents {kind} {name!r}, which is "
            "not registered"
        )
    return problems


def main() -> int:
    problems = check()
    if problems:
        for problem in problems:
            print(f"docs-consistency: {problem}", file=sys.stderr)
        return 1
    print("docs-consistency: registries and docs agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
